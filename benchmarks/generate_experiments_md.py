"""Assemble EXPERIMENTS.md from the persistent result store.

Every section is summarised from the stored grid-point runs under
``benchmarks/results/store/`` via the experiment registry
(:mod:`repro.bench.registry`): grid points already in the store are not
re-executed, so with the committed store this script regenerates every
table — and rewrites every ``benchmarks/results/*.md`` — byte-identically
without simulating anything.  Missing points (a cold store, or a changed
experiment version) are executed and appended first, which is the same
resume path ``python -m repro matrix run`` uses.

The registry is also the drift check: a ``benchmarks/results/*.md``
report with no registry entry, or a ``NOTES`` key naming an unregistered
experiment, is an error — new experiments must be registered, not
hand-appended.
"""

from __future__ import annotations

import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
TARGET = os.path.join(HERE, "..", "EXPERIMENTS.md")
_SRC = os.path.join(HERE, "..", "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

# Hand-written framing around a saved report: (intro, outro).  An intro
# that opens with a heading replaces the report's own first line.
NOTES = {
    "ablation_a4_hybrid_dynamic": (
        """\
Section 3.4.2's Hybrid join plans its spool partitions from the
optimizer's build-cardinality estimate — a number the paper always has
exactly right because the Wisconsin relations are synthetic.  This
experiment makes the estimate wrong on purpose (`est err x` scales it
by 1/4x, 1x and 4x) and sweeps three spill policies: `static` trusts
the plan and falls back to Figure 13-style overflow chunking when the
build side doesn't fit; `demote` keeps the plan but evicts
hash-table buckets to a fresh spool partition the moment actual build
bytes exceed memory; `dynamic` ignores the estimate, starts fully
in-memory, demotes on demand and recursively re-partitions any spooled
partition that still won't fit.  Regenerate with
`python -m repro matrix run ablation_a4_hybrid_dynamic` (or
`pytest benchmarks/bench_ablation_hybrid_dynamic.py --benchmark-only`),
or interactively via `python -m repro hybrid`.
""",
        """\
Reading the table: with an accurate estimate the reactive machinery is
pure insurance — `demote` never fires and its column is bit-identical
to `static`, which is why the default configuration keeps the static
policy and every previously published number.  Under a 4x
*underestimate* the static plan's resident fraction is sized for a
build side that never fits, and resolve-phase chunking re-scans the
probe spool per chunk; demotion reacts during the build instead and
wins.  Under a 4x *overestimate* the static plan spools most of the
build side that would have fit in memory — the dynamic policy's
optimistic start skips the spooling entirely and its response is
bit-identical across every error factor, because it never reads the
estimate.  Evidence per cell (overflow events, planned partitions,
spool pages) is stored in `ablation_a4_hybrid_dynamic.json`; the
profiled cell also exports a Perfetto trace whose hash-table counter
track shows bytes, overflow events and partition count evolving as
demotions land.
""",
    ),
    "workload_mpl": (
        """\
### Extension E3 — multiuser benchmarks (MPL sweep, mixed workload)

Section 6.2.1 ends with the paper's open question: "The validity of this
expectation will be determined in future multiuser benchmarks of the
Gamma database machine."  This experiment runs those benchmarks: 16
closed-loop terminals (seeded exponential think times) submit a mixed
workload — single-tuple and 1%/10% range selections, non-indexed
modifies, and an occasional Remote-mode joinABprime — through an
admission controller whose multiprogramming level is swept 1→16, on
both machines.  Regenerate with
`python -m repro matrix run workload_mpl` (or
`pytest benchmarks/bench_extension_workload.py --benchmark-only`), or
interactively via `python -m repro workload --sweep --machine both`.
""",
        """\
Reading the curves: throughput climbs steeply while queue wait
dominates latency (MPL 1→8), then flattens as the disk sites saturate —
Gamma gains only 3% from MPL 8→16 while mean service time stretches
from 0.72 s to 0.86 s.  Teradata, slower per query, is still
queue-limited at MPL 16 and keeps scaling.  Both sweeps are seeded and
bit-identical across repeat runs (the CI `workload-smoke` job asserts
this with `cmp`).
""",
    ),
    "extension_e4_skew": (
        """\
Section 2.2.2 notes that Gamma "applies a hash function to the key
attribute of each tuple to distribute tuples" — a split that the paper
never stresses with a non-uniform attribute.  This experiment does: the
probe relation's join attribute is drawn from a Zipf distribution
(exponent 0 → uniform, 1.5 → one value holds >25 % of the tuples) and
joinABprime is re-run under four redistribution strategies — the
paper's plain `hash` split, equal-depth `range` boundaries,
virtual-processor hashing (`vhash`), and fragment-replicate
(`hot-broadcast`: hot build keys go everywhere, hot probe tuples are
sprayed round-robin).  Regenerate with
`python -m repro matrix run extension_e4_skew` (or
`pytest benchmarks/bench_extension_skew.py --benchmark-only`), or
interactively via `python -m repro skew`.
""",
        """\
Reading the table: redistribution skew cannot be fixed by a smarter
*partitioning* — range and vhash splits still send every copy of the
hot value to one site, so their speedups collapse with plain hash.
Only replicating the hot build keys and spraying the matching probe
tuples (`hot-broadcast`) restores the uniform-case speedup, at the
price of duplicating a handful of build tuples per site.
""",
    ),
    "extension_e5_scaleup": (
        """\
Section 4.5 stops the speedup experiments at 32 processors — the
hardware Gamma had.  This experiment asks what the *model* predicts
beyond that: the same non-indexed selection and joinABprime
(100,000-tuple relations) declustered across 8, 64, 256 and 1,000
sites.  Regenerate with
`python -m repro matrix run extension_e5_scaleup` (or
`pytest benchmarks/bench_extension_scaleup.py --benchmark-only`), or
interactively via `python -m repro scaleup`.
""",
        """\
Reading the table: the paper's near-linear regime survives well past
the hardware — 8→64 sites still buys a ~3x response-time win at this
relation size — but by 256 sites both queries *roll over*: each site
holds so few tuples that the fixed per-site costs (operator
activation, and the sites² end-of-stream port-close traffic of the
redistribution phase) dominate the shrinking per-site scan, and
response time climbs again.  That is Section 4.5's "diminishing
returns" argument taken to its asymptote, and the reason the 1,000-site
rows are slower than the 64-site ones despite 15x the hardware.  The
kernel-events column grows ~quadratically with sites while wall-clock
per event stays flat — scaling the *simulator* to 1,000 sites is a
throughput problem (see DESIGN.md's performance-engineering section),
not a semantic one.
""",
    ),
    "telemetry_knee": (
        """\
### Extension E6 — the latency knee (open-loop arrival-rate sweep)

Extension E3's closed-loop terminals bound concurrency by construction;
the overload question — *at what offered load does each machine fall
over?* — needs open-loop arrivals.  Here a Poisson stream submits the
mixed Wisconsin workload at a fixed rate (0.5 → 16 queries/s, mpl=8)
while a telemetry sampler records sliding-window latency percentiles,
admission-queue depth and per-node utilisation every 0.25 s of
simulated time; rule-based detectors stamp the simulated instant
overload onset (sustained queue growth) fires.  Regenerate with
`python -m repro matrix run telemetry_knee` (or
`pytest benchmarks/bench_extension_telemetry.py --benchmark-only`), or
interactively via `python -m repro monitor mixed --rate 8`.
""",
        """\
Reading the table: both machines hold flat percentiles while the
offered rate stays below their saturation throughput — Gamma up to
~4.7 q/s served at rate 4, Teradata only ~3.9 — then the knee: at the
next rate the admission queue grows without bound, the overload
detector fires within the first seconds of the run, and p95 latency is
no longer a service time but a queueing delay that scales with run
length.  Gamma's knee sits roughly one octave to the right of
Teradata's, consistent with the single-user response-time gap of
Tables 1-3.  The time-resolved evidence (windowed p95 and queue-depth
tracks per point) is stored in `telemetry_knee.json`; the sampler is
pulled by the kernel, never scheduled, so every number here is
bit-identical with telemetry on or off.
""",
    ),
}

PREAMBLE = """\
# EXPERIMENTS — paper vs. measured

Every table and figure of *"A Performance Analysis of the Gamma Database
Machine"* (DeWitt, Ghandeharizadeh & Schneider, SIGMOD 1988), regenerated
from the persistent result store by
`python benchmarks/generate_experiments_md.py`.  Measured values are
**modeled seconds** from the discrete-event simulation (see DESIGN.md §2
for the substitution rationale); `gamma ratio` columns give
measured/paper.  Shape checks are the paper's qualitative claims,
asserted by the benchmarks.

Store note: every measured grid point lives in
`benchmarks/results/store/` (JSON lines, keyed by canonical config hash
and experiment version — DESIGN.md §5.10).  Sweeps resume: re-running
any experiment (`python -m repro matrix run <name>`, or the
`pytest benchmarks/ --benchmark-only` suite) executes only grid points
missing from the store, so a warm store regenerates this file without
simulating anything; `--force` re-measures.  `python -m repro matrix
list` shows per-experiment coverage.

Scale note: tables default to the 10,000- and 100,000-tuple relations; set
`GAMMA_BENCH_SIZES=10000,100000,1000000` to regenerate the million-tuple
columns (several minutes of wall time).  Figure experiments use the
100,000-tuple relations the paper uses.

Wall-clock note: every sweep (processor count, page size, memory ratio,
relation size) fans its points across CPU cores through a process pool;
`GAMMA_BENCH_JOBS=N` caps the workers and `GAMMA_BENCH_JOBS=1` forces
sequential in-process execution.  Parallel and sequential runs produce
**byte-identical** tables (per-relation seeds are `crc32`-derived, so they
do not depend on the process or execution order; asserted by
`tests/bench/test_sweep.py`).  The simulator's own speed is tracked
separately by `python benchmarks/perf/run_perf.py`, which times a
pure-kernel workload, the Figure 1-2 file-scan selection, a hybrid
join and a many-site scaleup sweep (`scaleup_1000`: selection +
joinABprime at 64/256/1,000 sites), and writes wall-clock seconds,
simulated seconds and events/second to
`benchmarks/results/BENCH_perf.json`; CI runs it at 10k scale and
fails if events/second regresses >30 % against
`benchmarks/perf/baseline.json`, then separately asserts the 256-site
smoke points stay inside a wall-clock budget.  Each perf run also lands
in the result store, so `python -m repro matrix report --perf` prints
the events/cpu-second trend across commits.

Profiling note: `pytest benchmarks/ --benchmark-only --profile` (or
`GAMMA_BENCH_PROFILE=1`, which is how the flag reaches sweep workers)
additionally runs the profiler on one representative point per figure and
writes `fig01_02_select_speedup.profile.json` and
`fig13_overflow.profile.json` to `benchmarks/results/` — the
`QueryProfile.to_json()` payload: per-operator spans, phase timeline,
critical path and verdict.  The Figure 13 point also exports
`fig13_overflow.trace.json`, a Perfetto trace with hash-table,
queue-depth and overflow counter tracks.  Both experiments assert the
instrumented re-run's simulated response time is **bit-identical** to the
uninstrumented one, so profiling can never perturb a published number.
(The committed store was recorded with profiling on, which is why this
script defaults `GAMMA_BENCH_PROFILE=1`: the profiled grid points are
distinct configs, and regeneration must summarise the stored ones.)

## Summary of fidelity

* **Table 1 (selections)** — Gamma measured/paper ratios land between
  0.95x and 1.3x on every comparable cell (single-tuple select ~1.6x).
  All orderings hold: clustered < non-clustered < file scan, the
  optimizer's segment-scan choice at 10 %, and Gamma < Teradata on all
  rows.
* **Table 2 (joins)** — ratios 0.83-1.05x at 10 k. Both machines'
  signature asymmetries reproduce: Gamma joinAselB < joinABprime
  (selection propagation) and Teradata the reverse; Teradata's 25-50 %
  key-attribute gain reproduces via the skipped redistribution.
* **Table 3 (updates)** — all orderings hold (deferred-update surcharge,
  key-modify most expensive, Gamma < Teradata throughout); absolute
  values within ~1.5x.
* **Figures** — every qualitative claim checks out: near-linear selection
  speedup; the 0 %-indexed slowdown (0.25 s → 0.6 s, the paper's own
  numbers); disk-bound→CPU-bound transition with page size; non-clustered
  degradation with large pages including the 16→32 KB clustered uptick;
  the Local/Allnodes/Remote mirror orderings; the overflow blow-up with
  the Local/Remote crossover and the flat ≤2-overflow region.
* **Ablation A4 (spill policies)** — with an accurate estimate the
  reactive policies are free insurance (`demote` is bit-identical to
  `static`); under a 4x cardinality underestimate reactive demotion
  beats the static plan 1.34x and full dynamic re-partitioning 1.13x,
  and under a 4x overestimate the dynamic policy's optimistic start is
  3.8x faster (49.6 s vs 189.1 s) because it never spools a build side
  that fits in memory.
* **Extension E4 (skew)** — with a Zipf-1.5 probe attribute the plain
  hash split's 8-site speedup collapses (6.8x → 3.7x) while
  fragment-replicate (`hot-broadcast`) holds 6.8x; range and
  virtual-processor splits barely help because a single hot *value*
  cannot be divided by any partitioning — the textbook case for
  replicating the build side's hot keys.
* **Known residuals** — (1) Figure 2's 10 %-selection speedup lag is
  muted because disk and network DMA are modeled as independent, not
  sharing the VAX bus; (2) Teradata's 1 M-tuple selection scans come out
  ~20 % above the paper (its measured scaling is slightly sublinear);
  (3) deep-overflow Local joins drift back under Remote because diskless
  spooling pays the network both ways in this model.

---
"""


def check_registry_drift(results_directory, registered, notes=None):
    """Fail loudly when results and registry disagree.

    ``registered`` is the registry's name list.  Raises ``SystemExit``
    when a ``*.md`` report exists with no registry entry (a benchmark
    was added without registering it) or a ``NOTES`` key names an
    unregistered experiment (a registry entry was renamed or removed
    without updating the framing text).
    """
    registered = set(registered)
    on_disk = {
        name[:-len(".md")]
        for name in os.listdir(results_directory)
        if name.endswith(".md")
    }
    stray = sorted(on_disk - registered)
    if stray:
        raise SystemExit(
            f"results with no registry entry: {', '.join(stray)} — register"
            " the experiment in src/repro/bench/registry.py or delete the"
            " stale report"
        )
    unnoted = sorted(set(notes or NOTES) - registered)
    if unnoted:
        raise SystemExit(
            f"NOTES entries with no registry entry: {', '.join(unnoted)} —"
            " NOTES keys must name registered experiments"
        )


def main() -> None:
    # The committed store's figure points were recorded with the
    # profiler attached; summarising them needs the same grid.
    os.environ.setdefault("GAMMA_BENCH_PROFILE", "1")

    from repro.bench.registry import ordered, run_registered
    from repro.bench.reporting import results_dir
    from repro.bench.store import ResultStore

    store = ResultStore()
    sections = [PREAMBLE]
    executed = 0
    for name, _label in ordered():
        run = run_registered(name, store)
        executed += run.executed
        body = run.report.to_markdown().rstrip() + "\n"
        intro, outro = NOTES.get(name, ("", ""))
        if intro:
            heading, rest = body.split("\n", 1)
            if intro.startswith("#"):
                body = intro + rest  # intro supplies the heading
            else:
                body = heading + "\n\n" + intro + "\n" + rest.lstrip("\n")
        if outro:
            body = body + "\n" + outro
        sections.append(body)
    check_registry_drift(results_dir(), [name for name, _ in ordered()])
    with open(TARGET, "w") as fh:
        fh.write("\n".join(sections))
    print(
        f"wrote {os.path.normpath(TARGET)} from the result store"
        f" ({executed} grid points executed, rest summarised from"
        f" {os.path.relpath(store.directory)})"
    )


if __name__ == "__main__":
    main()
