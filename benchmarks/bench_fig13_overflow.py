"""Figure 13 — Simple hash-join behaviour under memory pressure: flat up
to two overflows, rapid deterioration beyond, and the Local/Remote
crossover caused by the overflow hash-function switch."""

from repro.bench import bench_experiment


def test_fig13_overflow(report_runner):
    report_runner(bench_experiment, name="fig13_overflow")
