"""Extension E6 — the latency knee: open-loop Poisson arrivals swept
over offered rate on both machines, with time-resolved telemetry
(sliding-window percentiles, admission-queue depth, overload-onset
timestamps) as evidence.

Writes the markdown table (``telemetry_knee.md``) and the raw sweep
profile (``telemetry_knee.json``) under ``benchmarks/results/``.
"""

from repro.bench import bench_experiment


def test_extension_telemetry_knee(report_runner):
    report_runner(bench_experiment, name="telemetry_knee")
