"""Ablation A3 — the Conclusions' 4 KB → 8 KB default-page-size
recommendation, evaluated over a mixed selection/join workload (and the
warning against track-sized pages)."""

from repro.bench import bench_experiment


def test_ablation_pagesize_default(report_runner):
    report_runner(bench_experiment, name="ablation_a3_pagesize_default")
