"""Ablation A3 — the Conclusions' 4 KB → 8 KB default-page-size
recommendation, evaluated over a mixed selection/join workload (and the
warning against track-sized pages)."""

from repro.bench import ablation_default_page_size_experiment


def test_ablation_pagesize_default(report_runner):
    report_runner(ablation_default_page_size_experiment)
