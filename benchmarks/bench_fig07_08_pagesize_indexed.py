"""Figures 7-8 — indexed selections vs disk page size: larger pages hurt
the non-clustered path (random transfer time beats fan-out) and the 1%
clustered selection stops improving past 16 KB."""

from repro.bench import bench_experiment


def test_fig07_08_pagesize_indexed(report_runner):
    report_runner(bench_experiment, name="fig07_08_pagesize_indexed")
