"""Extension E3 — the full multiuser workload experiment: closed-loop
terminals behind admission control, MPL swept 1→16 on both machines.

Writes the markdown table (``workload_mpl.md``) and the raw sweep
profile (``workload_mpl.json``) under ``benchmarks/results/``.
"""

from repro.bench import save_workload_profile, workload_mpl_experiment


def _experiment():
    report, profile = workload_mpl_experiment()
    save_workload_profile(profile)
    return report


def test_extension_workload_mpl(report_runner):
    report_runner(_experiment)
