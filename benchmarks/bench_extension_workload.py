"""Extension E3 — the full multiuser workload experiment: closed-loop
terminals behind admission control, MPL swept 1→16 on both machines.

Writes the markdown table (``workload_mpl.md``) and the raw sweep
profile (``workload_mpl.json``) under ``benchmarks/results/``.
"""

from repro.bench import bench_experiment


def test_extension_workload_mpl(report_runner):
    report_runner(bench_experiment, name="workload_mpl")
