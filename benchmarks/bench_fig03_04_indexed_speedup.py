"""Figures 3-4 — indexed selection response time and speedup vs processors,
including the paper's 0%-selection slowdown anomaly (operator start-up
costs exceed the 1-2 index I/Os saved per site)."""

from repro.bench import bench_experiment


def test_fig03_04_indexed_speedup(report_runner):
    report_runner(bench_experiment, name="fig03_04_indexed_speedup")
