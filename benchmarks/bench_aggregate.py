"""Aggregate queries — run in the original study but cut from the paper
for space ("The interested reader is referred to [DEWI88]"); reproduced
here as the companion experiment: scalar aggregates with partial/combine
processing and hash-partitioned group-by."""

from repro.bench import bench_experiment


def test_aggregate(report_runner):
    report_runner(bench_experiment, name="aggregate")
