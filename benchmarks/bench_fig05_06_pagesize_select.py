"""Figures 5-6 — non-indexed selections vs disk page size (2-32 KB):
disk bound at 2 KB, CPU bound by 16 KB, and the widening 10%-over-0% gap
as the network interface becomes the bottleneck."""

from repro.bench import bench_experiment


def test_fig05_06_pagesize_select(report_runner):
    report_runner(bench_experiment, name="fig05_06_pagesize_select")
