"""Figures 1-2 — non-indexed selection response time and speedup vs the
number of processors with disks (0%, 1%, 10% on the 100k relation)."""

from repro.bench import bench_experiment


def test_fig01_02_select_speedup(report_runner):
    report_runner(bench_experiment, name="fig01_02_select_speedup")
