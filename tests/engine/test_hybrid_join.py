"""Tests for the parallel Hybrid hash join (the paper's announced fix)."""

from dataclasses import replace

import pytest

from repro import GammaConfig, GammaMachine
from repro.engine import JoinMode, Query, RangePredicate, ScanNode
from repro.workloads import generate_tuples


def nested_loop_join(left, right, lpos, rpos):
    index = {}
    for lt in left:
        index.setdefault(lt[lpos], []).append(lt)
    return sorted(
        lt + rt for rt in right for lt in index.get(rt[rpos], [])
    )


def hybrid_machine(join_memory=10_000_000, **kwargs):
    config = replace(
        GammaConfig(n_disk_sites=4, n_diskless=4,
                    join_memory_total=join_memory),
        join_algorithm="hybrid", **kwargs,
    )
    m = GammaMachine(config)
    m.load_wisconsin("A", 2_000, seed=21)
    m.load_wisconsin("Bprime", 500, seed=23)
    return m


class TestHybridCorrectness:
    def test_in_memory_join_matches_oracle(self):
        m = hybrid_machine()
        r = m.run(Query.join(ScanNode("Bprime"), ScanNode("A"),
                             on=("unique2", "unique2"), into="o"))
        expected = nested_loop_join(
            list(generate_tuples(500, seed=23)),
            list(generate_tuples(2000, seed=21)), 1, 1,
        )
        assert sorted(m.catalog.lookup("o").records()) == expected
        assert r.result_count == 500

    def test_spilling_join_matches_oracle(self):
        m = hybrid_machine(join_memory=30_000)  # forces several partitions
        r = m.run(Query.join(ScanNode("Bprime"), ScanNode("A"),
                             on=("unique2", "unique2"), into="o"))
        expected = nested_loop_join(
            list(generate_tuples(500, seed=23)),
            list(generate_tuples(2000, seed=21)), 1, 1,
        )
        assert sorted(m.catalog.lookup("o").records()) == expected
        assert r.max_overflows > 0  # reported as partitions beyond memory

    def test_deep_memory_pressure_still_correct(self):
        m = hybrid_machine(join_memory=12_000)
        r = m.run(Query.join(ScanNode("Bprime"), ScanNode("A"),
                             on=("unique2", "unique2"), into="o"))
        assert r.result_count == 500

    def test_with_selections(self):
        m = hybrid_machine(join_memory=30_000)
        sel = RangePredicate("unique2", 0, 99)
        r = m.run(Query.join(ScanNode("Bprime", sel), ScanNode("A"),
                             on=("unique2", "unique2"), into="o"))
        assert r.result_count == 100

    def test_local_mode(self):
        m = hybrid_machine(join_memory=30_000)
        r = m.run(Query.join(ScanNode("Bprime"), ScanNode("A"),
                             on=("unique1", "unique1"),
                             mode=JoinMode.LOCAL, into="o"))
        assert r.result_count == 500

    def test_empty_build_side(self):
        m = hybrid_machine(join_memory=30_000)
        r = m.run(Query.join(
            ScanNode("Bprime", RangePredicate("unique2", -9, -1)),
            ScanNode("A"), on=("unique2", "unique2"), into="o",
        ))
        assert r.result_count == 0

    def test_bit_filters_compose(self):
        m = hybrid_machine(join_memory=30_000, use_bit_filters=True)
        r = m.run(Query.join(ScanNode("Bprime"), ScanNode("A"),
                             on=("unique2", "unique2"), into="o"))
        assert r.result_count == 500


class TestHybridVsSimple:
    def _run(self, algorithm, join_memory):
        config = replace(
            GammaConfig(n_disk_sites=4, n_diskless=4,
                        join_memory_total=join_memory),
            join_algorithm=algorithm,
        )
        m = GammaMachine(config)
        m.load_wisconsin("A", 4_000, seed=21)
        m.load_wisconsin("Bprime", 1_000, seed=23)
        return m.run(Query.join(ScanNode("Bprime"), ScanNode("A"),
                                on=("unique2", "unique2"), into="o"))

    def test_same_answer_both_algorithms(self):
        simple = self._run("simple", 40_000)
        hybrid = self._run("hybrid", 40_000)
        assert simple.result_count == hybrid.result_count == 1000

    def test_hybrid_wins_under_deep_pressure(self):
        simple = self._run("simple", 25_000)
        hybrid = self._run("hybrid", 25_000)
        assert hybrid.response_time < simple.response_time

    def test_equivalent_with_ample_memory(self):
        simple = self._run("simple", 10_000_000)
        hybrid = self._run("hybrid", 10_000_000)
        assert hybrid.response_time == pytest.approx(
            simple.response_time, rel=0.02
        )

    def test_invalid_algorithm_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            GammaConfig(join_algorithm="sort-merge")
