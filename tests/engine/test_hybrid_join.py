"""Tests for the parallel Hybrid hash join (the paper's announced fix)."""

from dataclasses import replace

import pytest

from repro import GammaConfig, GammaMachine
from repro.engine import JoinMode, Query, RangePredicate, ScanNode
from repro.engine.operators import hybrid_join
from repro.engine.operators.hybrid_join import PartitionPlan, _h2
from repro.workloads import generate_tuples


def nested_loop_join(left, right, lpos, rpos):
    index = {}
    for lt in left:
        index.setdefault(lt[lpos], []).append(lt)
    return sorted(
        lt + rt for rt in right for lt in index.get(rt[rpos], [])
    )


def hybrid_machine(join_memory=10_000_000, **kwargs):
    config = replace(
        GammaConfig(n_disk_sites=4, n_diskless=4,
                    join_memory_total=join_memory),
        join_algorithm="hybrid", **kwargs,
    )
    m = GammaMachine(config)
    m.load_wisconsin("A", 2_000, seed=21)
    m.load_wisconsin("Bprime", 500, seed=23)
    return m


class TestHybridCorrectness:
    def test_in_memory_join_matches_oracle(self):
        m = hybrid_machine()
        r = m.run(Query.join(ScanNode("Bprime"), ScanNode("A"),
                             on=("unique2", "unique2"), into="o"))
        expected = nested_loop_join(
            list(generate_tuples(500, seed=23)),
            list(generate_tuples(2000, seed=21)), 1, 1,
        )
        assert sorted(m.catalog.lookup("o").records()) == expected
        assert r.result_count == 500

    def test_spilling_join_matches_oracle(self):
        m = hybrid_machine(join_memory=30_000)  # forces several partitions
        r = m.run(Query.join(ScanNode("Bprime"), ScanNode("A"),
                             on=("unique2", "unique2"), into="o"))
        expected = nested_loop_join(
            list(generate_tuples(500, seed=23)),
            list(generate_tuples(2000, seed=21)), 1, 1,
        )
        assert sorted(m.catalog.lookup("o").records()) == expected
        # Planned partitions and actual overflow reactions are separate
        # reports: a well-estimated spilling join plans several
        # partitions but never actually overflows.
        assert r.max_partitions > 1
        assert r.max_overflows == 0

    def test_deep_memory_pressure_still_correct(self):
        m = hybrid_machine(join_memory=12_000)
        r = m.run(Query.join(ScanNode("Bprime"), ScanNode("A"),
                             on=("unique2", "unique2"), into="o"))
        assert r.result_count == 500

    def test_with_selections(self):
        m = hybrid_machine(join_memory=30_000)
        sel = RangePredicate("unique2", 0, 99)
        r = m.run(Query.join(ScanNode("Bprime", sel), ScanNode("A"),
                             on=("unique2", "unique2"), into="o"))
        assert r.result_count == 100

    def test_local_mode(self):
        m = hybrid_machine(join_memory=30_000)
        r = m.run(Query.join(ScanNode("Bprime"), ScanNode("A"),
                             on=("unique1", "unique1"),
                             mode=JoinMode.LOCAL, into="o"))
        assert r.result_count == 500

    def test_empty_build_side(self):
        m = hybrid_machine(join_memory=30_000)
        r = m.run(Query.join(
            ScanNode("Bprime", RangePredicate("unique2", -9, -1)),
            ScanNode("A"), on=("unique2", "unique2"), into="o",
        ))
        assert r.result_count == 0

    def test_bit_filters_compose(self):
        m = hybrid_machine(join_memory=30_000, use_bit_filters=True)
        r = m.run(Query.join(ScanNode("Bprime"), ScanNode("A"),
                             on=("unique2", "unique2"), into="o"))
        assert r.result_count == 500


class TestHybridVsSimple:
    def _run(self, algorithm, join_memory):
        config = replace(
            GammaConfig(n_disk_sites=4, n_diskless=4,
                        join_memory_total=join_memory),
            join_algorithm=algorithm,
        )
        m = GammaMachine(config)
        m.load_wisconsin("A", 4_000, seed=21)
        m.load_wisconsin("Bprime", 1_000, seed=23)
        return m.run(Query.join(ScanNode("Bprime"), ScanNode("A"),
                                on=("unique2", "unique2"), into="o"))

    def test_same_answer_both_algorithms(self):
        simple = self._run("simple", 40_000)
        hybrid = self._run("hybrid", 40_000)
        assert simple.result_count == hybrid.result_count == 1000

    def test_hybrid_wins_under_deep_pressure(self):
        simple = self._run("simple", 25_000)
        hybrid = self._run("hybrid", 25_000)
        assert hybrid.response_time < simple.response_time

    def test_equivalent_with_ample_memory(self):
        simple = self._run("simple", 10_000_000)
        hybrid = self._run("hybrid", 10_000_000)
        assert hybrid.response_time == pytest.approx(
            simple.response_time, rel=0.02
        )

    def test_invalid_algorithm_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            GammaConfig(join_algorithm="sort-merge")


class TestPartitionPlan:
    """The pure key-space routing arithmetic, exercised directly."""

    KEYS = range(5_000)

    def test_accurate_plan_layout(self):
        plan = PartitionPlan(expected_bytes=4_000_000, capacity_bytes=1_000_000)
        assert plan.n_static == 5  # ceil(4 * 1.05)
        assert plan.fraction0 == pytest.approx(0.95 / 4)
        assert plan.static_cut == plan.fraction0
        assert plan.n_partitions == 5

    def test_routing_covers_exactly_the_planned_range(self):
        plan = PartitionPlan(4_000_000, 1_000_000)
        parts = {plan.partition_of(k) for k in self.KEYS}
        assert parts == set(range(plan.n_static))

    def test_two_partitions_rest_region_is_single_slice(self):
        # n_static == 2 exercises the min(n_static - 2, ...) clamp: the
        # whole rest region is one spool partition, even for hash values
        # at the very top of the unit interval.
        plan = PartitionPlan(1_000_000, 1_000_000, forced_partitions=2)
        assert {plan.partition_of(k) for k in self.KEYS} <= {0, 1}
        top = max(self.KEYS, key=lambda k: _h2(k, 0))
        assert _h2(top, 0) > 0.999  # effectively the 1.0 boundary
        assert plan.partition_of(top) == 1

    def test_forced_single_partition_keeps_everything_resident(self):
        plan = PartitionPlan(9_999_999, 1_000, forced_partitions=1)
        assert plan.fraction0 == 1.0
        assert all(plan.partition_of(k) == 0 for k in self.KEYS)

    def test_optimistic_plan_ignores_the_estimate(self):
        plan = PartitionPlan(9_999_999, 1_000, optimistic=True)
        assert plan.n_static == 1 and plan.fraction0 == 1.0
        assert all(plan.partition_of(k) == 0 for k in self.KEYS)

    def test_demote_halves_resident_region(self):
        plan = PartitionPlan(2_000_000, 1_000_000)
        before = plan.fraction0
        resident_before = {k for k in self.KEYS if plan.partition_of(k) == 0}
        cut = plan.demote()
        assert cut == pytest.approx(before / 2)
        assert plan.n_partitions == plan.n_static + 1
        resident_after = {k for k in self.KEYS if plan.partition_of(k) == 0}
        assert resident_after < resident_before
        # Every evicted key routes to the new demoted slice, and the
        # static spool partitions are untouched.
        for k in resident_before - resident_after:
            assert plan.partition_of(k) == plan.n_static

    def test_demote_bottoms_out_at_zero(self):
        plan = PartitionPlan(2_000_000, 1_000_000)
        for _ in range(60):
            plan.demote()
        assert plan.fraction0 == 0.0
        assert all(plan.partition_of(k) != 0 for k in self.KEYS)

    def test_routing_is_stable_across_demotions(self):
        # A key that routes to a static spool partition keeps that
        # partition no matter how many demotions happen later.
        plan = PartitionPlan(4_000_000, 1_000_000)
        spooled = {
            k: plan.partition_of(k) for k in self.KEYS
            if plan.partition_of(k) > 0
        }
        plan.demote()
        plan.demote()
        for k, part in spooled.items():
            assert plan.partition_of(k) == part


class TestSpillPolicies:
    def _oracle(self):
        return nested_loop_join(
            list(generate_tuples(500, seed=23)),
            list(generate_tuples(2000, seed=21)), 1, 1,
        )

    @pytest.mark.parametrize("policy", ["static", "demote", "dynamic"])
    @pytest.mark.parametrize("factor", [0.1, 1.0, 10.0])
    def test_estimate_error_never_changes_answers(self, policy, factor):
        # 10x under- and overestimates change the plan, never the join.
        m = hybrid_machine(join_memory=30_000,
                           hybrid_spill_policy=policy,
                           hybrid_estimate_factor=factor)
        m.run(Query.join(ScanNode("Bprime"), ScanNode("A"),
                         on=("unique2", "unique2"), into="o"))
        assert sorted(m.catalog.lookup("o").records()) == self._oracle()

    def test_resolve_chunking_matches_in_memory_answer(self):
        # The chunk-and-rescan resolve path (static policy, memory far
        # too small for even one spooled partition) must produce the
        # same relation as the all-in-memory join.
        m = hybrid_machine(join_memory=8_000)
        m.run(Query.join(ScanNode("Bprime"), ScanNode("A"),
                         on=("unique2", "unique2"), into="o"))
        assert sorted(m.catalog.lookup("o").records()) == self._oracle()

    def test_dynamic_recursion_matches_oracle(self):
        m = hybrid_machine(join_memory=8_000,
                           hybrid_spill_policy="dynamic")
        r = m.run(Query.join(ScanNode("Bprime"), ScanNode("A"),
                             on=("unique2", "unique2"), into="o"))
        assert sorted(m.catalog.lookup("o").records()) == self._oracle()
        assert r.max_overflows > 0  # it really did adapt

    def test_dynamic_response_independent_of_estimate(self):
        def run(factor):
            m = hybrid_machine(join_memory=20_000,
                               hybrid_spill_policy="dynamic",
                               hybrid_estimate_factor=factor)
            return m.run(Query.join(ScanNode("Bprime"), ScanNode("A"),
                                    on=("unique2", "unique2"), into="o"))

        times = {run(f).response_time for f in (0.1, 1.0, 10.0)}
        assert len(times) == 1

    def test_static_and_demote_identical_without_overflow(self):
        def run(policy):
            m = hybrid_machine(join_memory=100_000,
                               hybrid_spill_policy=policy)
            return m.run(Query.join(ScanNode("Bprime"), ScanNode("A"),
                                    on=("unique2", "unique2"), into="o"))

        assert (run("static").response_time
                == run("demote").response_time)

    def test_forced_partitions_knob(self):
        m = hybrid_machine(join_memory=10_000_000, hybrid_partitions=4)
        r = m.run(Query.join(ScanNode("Bprime"), ScanNode("A"),
                             on=("unique2", "unique2"), into="o"))
        assert r.result_count == 500
        assert r.max_partitions == 4

    def test_recursion_depth_zero_falls_back_to_chunking(self):
        m = hybrid_machine(join_memory=8_000,
                           hybrid_spill_policy="dynamic",
                           hybrid_max_recursion=0)
        m.run(Query.join(ScanNode("Bprime"), ScanNode("A"),
                         on=("unique2", "unique2"), into="o"))
        assert sorted(m.catalog.lookup("o").records()) == self._oracle()


class TestHybridConfigKnobs:
    def test_invalid_policy_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            GammaConfig(hybrid_spill_policy="panic")

    def test_negative_partitions_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            GammaConfig(hybrid_partitions=-1)

    def test_nonpositive_estimate_factor_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            GammaConfig(hybrid_estimate_factor=0.0)

    def test_with_hybrid_helper(self):
        config = GammaConfig().with_hybrid(
            spill_policy="dynamic", estimate_factor=0.5)
        assert config.join_algorithm == "hybrid"
        assert config.hybrid_spill_policy == "dynamic"
        assert config.hybrid_estimate_factor == 0.5
        # Unset knobs keep their defaults.
        assert config.hybrid_partitions == 0
        assert config.hybrid_max_recursion == 3


class TestChargeCache:
    def test_cache_is_bounded(self):
        hybrid_join._charge_cache.clear()
        for n in range(2 * hybrid_join._CHARGE_CACHE_MAX):
            hybrid_join._repeat_charge((0.001, 0.002), n)
        assert (len(hybrid_join._charge_cache)
                <= hybrid_join._CHARGE_CACHE_MAX)

    def test_eviction_keeps_values_correct(self):
        hybrid_join._charge_cache.clear()
        direct = hybrid_join._repeat_charge((0.003, 0.007), 10)
        for n in range(hybrid_join._CHARGE_CACHE_MAX + 10):
            hybrid_join._repeat_charge((0.001,), n)
        assert hybrid_join._repeat_charge((0.003, 0.007), 10) == direct
