"""Tests for optimizer decisions: access paths, sites, join planning."""

import pytest

from repro.engine import (
    AccessPath,
    ExactMatch,
    JoinMode,
    JoinNode,
    Query,
    RangePredicate,
    ScanNode,
    TruePredicate,
)
from repro.engine.planner import PhysicalJoin, PhysicalScan, Planner
from repro.errors import PlanError


def plan_scan(machine, predicate, relation="twok", forced=None):
    planner = Planner(machine.config, machine.catalog)
    query = Query.select(relation, predicate, forced_path=forced)
    return planner.plan(query).root


class TestAccessPathSelection:
    def test_full_scan_for_true_predicate(self, machine):
        scan = plan_scan(machine, TruePredicate())
        assert scan.path is AccessPath.FILE_SCAN

    def test_clustered_index_for_key_range(self, machine):
        scan = plan_scan(machine, RangePredicate("unique1", 0, 19))
        assert scan.path is AccessPath.CLUSTERED_INDEX

    def test_nonclustered_index_for_selective_range(self, machine):
        # 1% selection through the unique2 index.
        scan = plan_scan(machine, RangePredicate("unique2", 0, 19))
        assert scan.path is AccessPath.NONCLUSTERED_INDEX

    def test_segment_scan_for_10pct_nonclustered(self, machine):
        # "our optimizer is smart enough to choose to use a segment scan
        # for this query" — 10% through a non-clustered index loses.
        scan = plan_scan(machine, RangePredicate("unique2", 0, 199))
        assert scan.path is AccessPath.FILE_SCAN

    def test_scan_for_unindexed_attribute(self, machine):
        scan = plan_scan(machine, RangePredicate("hundred", 0, 0))
        assert scan.path is AccessPath.FILE_SCAN

    def test_clustered_exact(self, machine):
        scan = plan_scan(machine, ExactMatch("unique1", 5))
        assert scan.path is AccessPath.CLUSTERED_EXACT

    def test_nonclustered_exact(self, machine):
        scan = plan_scan(machine, ExactMatch("unique2", 5))
        assert scan.path is AccessPath.NONCLUSTERED_EXACT

    def test_forced_path_wins(self, machine):
        scan = plan_scan(
            machine, RangePredicate("unique2", 0, 19),
            forced=AccessPath.FILE_SCAN,
        )
        assert scan.path is AccessPath.FILE_SCAN


class TestSitePruning:
    def test_exact_on_partitioning_attr_uses_one_site(self, machine):
        scan = plan_scan(machine, ExactMatch("unique1", 42))
        assert len(scan.sites) == 1

    def test_exact_on_other_attr_uses_all_sites(self, machine):
        scan = plan_scan(machine, ExactMatch("unique2", 42))
        assert len(scan.sites) == machine.config.n_disk_sites

    def test_range_uses_all_sites(self, machine):
        scan = plan_scan(machine, RangePredicate("unique1", 0, 10))
        assert len(scan.sites) == machine.config.n_disk_sites


class TestJoinPlanning:
    def test_join_schema_is_concat(self, join_machine):
        planner = Planner(join_machine.config, join_machine.catalog)
        query = Query.join(
            ScanNode("Bprime"), ScanNode("A"), on=("unique2", "unique2")
        )
        plan = planner.plan(query)
        assert isinstance(plan.root, PhysicalJoin)
        assert len(plan.schema) == 32  # two 16-attribute Wisconsin schemas

    def test_unknown_join_attr_rejected(self, join_machine):
        planner = Planner(join_machine.config, join_machine.catalog)
        query = Query.join(ScanNode("Bprime"), ScanNode("A"), on=("zzz", "unique2"))
        with pytest.raises(PlanError):
            planner.plan(query)

    def test_join_mode_preserved(self, join_machine):
        planner = Planner(join_machine.config, join_machine.catalog)
        for mode in JoinMode:
            query = Query.join(
                ScanNode("Bprime"), ScanNode("A"),
                on=("unique2", "unique2"), mode=mode,
            )
            assert planner.plan(query).root.mode is mode

    def test_estimated_matches(self, machine):
        scan = plan_scan(machine, RangePredicate("unique1", 0, 19))
        assert scan.estimated_matches == pytest.approx(20)

    def test_plan_description_mentions_path(self, machine):
        planner = Planner(machine.config, machine.catalog)
        plan = planner.plan(Query.select("twok", RangePredicate("unique1", 0, 5)))
        assert "clustered-index" in plan.description


class TestAggregatePlanning:
    def test_group_schema(self, machine):
        planner = Planner(machine.config, machine.catalog)
        plan = planner.plan(Query.aggregate("twok", op="sum", attr="unique1",
                                            group_by="ten"))
        assert plan.schema.names() == ["ten", "sum"]

    def test_scalar_schema(self, machine):
        planner = Planner(machine.config, machine.catalog)
        plan = planner.plan(Query.aggregate("twok", op="count"))
        assert len(plan.schema) == 1

    def test_unknown_attr_rejected(self, machine):
        planner = Planner(machine.config, machine.catalog)
        with pytest.raises(PlanError):
            planner.plan(Query.aggregate("twok", op="sum", attr="zzz"))
