"""Tests for the recovery server (write-ahead log shipping)."""

from dataclasses import replace

import pytest

from repro import (
    AppendTuple,
    DeleteTuple,
    ExactMatch,
    GammaConfig,
    GammaMachine,
    ModifyTuple,
    Query,
    RangePredicate,
)
from repro.workloads import generate_tuples


def machine(use_recovery=True):
    config = replace(
        GammaConfig(n_disk_sites=4, n_diskless=4),
        use_recovery_server=use_recovery,
    )
    m = GammaMachine(config)
    m.load_wisconsin("r", 2_000, seed=71, clustered_on="unique1")
    return m


def fresh(u):
    return (u, u) + next(iter(generate_tuples(1, seed=5)))[2:]


class TestRecoveryServer:
    def test_store_ships_one_record_per_tuple(self):
        m = machine()
        r = m.run(Query.select("r", RangePredicate("unique1", 0, 199),
                               into="o"))
        assert r.stats["log_records"] == 200
        assert r.stats["log_pages_forced"] >= 1

    def test_no_logging_when_disabled(self):
        m = machine(use_recovery=False)
        r = m.run(Query.select("r", RangePredicate("unique1", 0, 199),
                               into="o"))
        assert "log_records" not in r.stats

    def test_host_returns_are_not_logged(self):
        m = machine()
        r = m.run(Query.select("r", RangePredicate("unique1", 0, 199)))
        assert r.stats.get("log_records", 0) == 0

    def test_logging_adds_overhead(self):
        off = machine(use_recovery=False).run(
            Query.select("r", RangePredicate("unique1", 0, 399), into="o")
        )
        on = machine().run(
            Query.select("r", RangePredicate("unique1", 0, 399), into="o")
        )
        assert on.response_time > off.response_time

    def test_every_update_kind_logs(self):
        m = machine()
        append = m.update(AppendTuple("r", fresh(50_000)))
        assert append.stats["log_records"] == 1
        modify = m.update(
            ModifyTuple("r", ExactMatch("unique1", 10), "odd100", 3)
        )
        assert modify.stats["log_records"] == 1
        relocate = m.update(
            ModifyTuple("r", ExactMatch("unique1", 11), "unique1", 60_000)
        )
        # Relocation logs the delete side and the re-insert side.
        assert relocate.stats["log_records"] == 2
        delete = m.update(DeleteTuple("r", ExactMatch("unique1", 50_000)))
        assert delete.stats["log_records"] == 1

    def test_update_forces_the_log(self):
        m = machine()
        r = m.update(AppendTuple("r", fresh(70_000)))
        assert r.stats["log_pages_forced"] >= 1

    def test_answers_unchanged_by_logging(self):
        pred = RangePredicate("unique1", 5, 105)
        off = machine(use_recovery=False).run(Query.select("r", pred))
        on = machine().run(Query.select("r", pred))
        assert sorted(off.tuples) == sorted(on.tuples)
