"""End-to-end selection execution: answers checked against oracles."""

import pytest

from repro import GammaConfig, GammaMachine
from repro.engine import AccessPath, ExactMatch, Query, RangePredicate, TruePredicate
from repro.errors import CatalogError
from repro.workloads import generate_tuples


def oracle(n, seed, predicate_fn):
    return sorted(
        t for t in generate_tuples(n, seed=seed) if predicate_fn(t)
    )


class TestSelectionCorrectness:
    def test_one_percent_clustered(self, machine):
        r = machine.run(Query.select("twok", RangePredicate("unique1", 0, 19)))
        assert sorted(r.tuples) == oracle(2000, 11, lambda t: t[0] <= 19)
        assert r.result_count == 20

    def test_one_percent_nonclustered(self, machine):
        r = machine.run(Query.select("twok", RangePredicate("unique2", 100, 119)))
        assert sorted(r.tuples) == oracle(2000, 11, lambda t: 100 <= t[1] <= 119)

    def test_ten_percent_file_scan(self, machine):
        r = machine.run(Query.select("twok", RangePredicate("unique2", 0, 199)))
        assert r.result_count == 200
        assert "file-scan" in r.plan

    def test_full_scan(self, machine):
        r = machine.run(Query.select("heap2k", TruePredicate()))
        assert r.result_count == 2000

    def test_zero_percent_returns_nothing(self, machine):
        r = machine.run(Query.select("twok", RangePredicate("unique2", -10, -1)))
        assert r.result_count == 0
        assert r.tuples == []

    def test_exact_match_single_tuple(self, machine):
        r = machine.run(Query.select("twok", ExactMatch("unique1", 777)))
        assert r.result_count == 1
        assert r.tuples[0][0] == 777

    def test_exact_match_via_secondary(self, machine):
        r = machine.run(Query.select("twok", ExactMatch("unique2", 777)))
        assert r.result_count == 1
        assert r.tuples[0][1] == 777

    def test_exact_match_miss(self, machine):
        r = machine.run(Query.select("twok", ExactMatch("unique1", 10**6)))
        assert r.result_count == 0

    def test_forced_file_scan_same_answer(self, machine):
        pred = RangePredicate("unique2", 0, 19)
        indexed = machine.run(Query.select("twok", pred))
        forced = machine.run(
            Query.select("twok", pred, forced_path=AccessPath.FILE_SCAN)
        )
        assert sorted(indexed.tuples) == sorted(forced.tuples)


class TestStoredResults:
    def test_result_relation_registered(self, machine):
        r = machine.run(
            Query.select("twok", RangePredicate("unique1", 0, 99), into="sel_out")
        )
        assert r.result_relation == "sel_out"
        rel = machine.catalog.lookup("sel_out")
        assert rel.num_records == 100
        assert sorted(rel.records()) == oracle(2000, 11, lambda t: t[0] <= 99)

    def test_result_spread_round_robin(self, machine):
        machine.run(
            Query.select("twok", RangePredicate("unique1", 0, 399), into="rr_out")
        )
        sizes = machine.catalog.lookup("rr_out").fragment_sizes()
        assert max(sizes) - min(sizes) <= len(sizes)

    def test_duplicate_result_name_rejected(self, machine):
        machine.run(Query.select("twok", RangePredicate("unique1", 0, 1), into="dup"))
        with pytest.raises(CatalogError):
            machine.run(
                Query.select("twok", RangePredicate("unique1", 0, 1), into="dup")
            )

    def test_storing_costs_more_than_host_return(self, machine):
        pred = RangePredicate("unique2", 0, 199)
        to_host = machine.run(Query.select("heap2k", pred))
        stored = machine.run(Query.select("heap2k", pred, into="st_out"))
        assert stored.response_time > 0
        assert stored.result_count == to_host.result_count


class TestSelectionTiming:
    def test_higher_selectivity_costs_more(self, machine):
        r1 = machine.run(Query.select("heap2k", RangePredicate("unique2", 0, 19), into="t1"))
        r10 = machine.run(Query.select("heap2k", RangePredicate("unique2", 0, 199), into="t10"))
        assert r10.response_time > r1.response_time

    def test_clustered_beats_scan(self, machine):
        clustered = machine.run(Query.select("twok", RangePredicate("unique1", 0, 19)))
        scan = machine.run(
            Query.select("twok", RangePredicate("unique1", 0, 19),
                         forced_path=AccessPath.FILE_SCAN)
        )
        assert clustered.response_time < scan.response_time

    def test_exact_single_site_beats_broadcast(self, machine):
        single = machine.run(Query.select("twok", ExactMatch("unique1", 5)))
        broadcast = machine.run(Query.select("twok", ExactMatch("unique2", 5)))
        assert single.response_time < broadcast.response_time

    def test_more_processors_scan_faster(self):
        times = {}
        for sites in (1, 4):
            m = GammaMachine(GammaConfig(n_disk_sites=sites, n_diskless=sites))
            m.load_wisconsin("r", 4_000, seed=5)
            res = m.run(Query.select("r", RangePredicate("unique2", 0, 39), into="o"))
            times[sites] = res.response_time
        assert times[4] < times[1]
        # near-linear speedup: at least 2.5x from 4x the hardware
        assert times[1] / times[4] > 2.5

    def test_response_time_positive_and_stats_filled(self, machine):
        r = machine.run(Query.select("twok", RangePredicate("unique1", 0, 9)))
        assert r.response_time > 0
        assert r.stats["sched_messages"] > 0
        assert r.utilisations  # non-empty

    def test_deterministic_response_time(self):
        def once():
            m = GammaMachine(GammaConfig(n_disk_sites=2, n_diskless=2))
            m.load_wisconsin("r", 1_000, seed=9)
            return m.run(
                Query.select("r", RangePredicate("unique2", 0, 99), into="o")
            ).response_time

        assert once() == once()
