"""End-to-end join execution: answers checked against a nested-loop oracle."""

import pytest

from repro import GammaConfig, GammaMachine
from repro.engine import JoinMode, Query, RangePredicate, ScanNode
from repro.workloads import generate_tuples


def nested_loop_join(left, right, lpos, rpos):
    index = {}
    for lt in left:
        index.setdefault(lt[lpos], []).append(lt)
    out = []
    for rt in right:
        for lt in index.get(rt[rpos], []):
            out.append(lt + rt)
    return sorted(out)


def tuples(n, seed):
    return list(generate_tuples(n, seed=seed))


class TestJoinCorrectness:
    def test_join_abprime_nonkey(self, join_machine):
        r = join_machine.run(
            Query.join(ScanNode("Bprime"), ScanNode("A"),
                       on=("unique2", "unique2"), into="j1")
        )
        expected = nested_loop_join(tuples(200, 23), tuples(2000, 21), 1, 1)
        got = sorted(join_machine.catalog.lookup("j1").records())
        assert got == expected
        assert r.result_count == len(expected) == 200

    def test_join_abprime_key(self, join_machine):
        r = join_machine.run(
            Query.join(ScanNode("Bprime"), ScanNode("A"),
                       on=("unique1", "unique1"), mode=JoinMode.LOCAL, into="j2")
        )
        expected = nested_loop_join(tuples(200, 23), tuples(2000, 21), 0, 0)
        assert sorted(join_machine.catalog.lookup("j2").records()) == expected
        assert r.result_count == 200

    def test_join_with_selections(self, join_machine):
        # joinAselB: selections propagated to both inputs.
        sel = RangePredicate("unique2", 0, 199)
        r = join_machine.run(
            Query.join(
                ScanNode("B", sel), ScanNode("A", sel),
                on=("unique2", "unique2"), into="j3",
            )
        )
        a = [t for t in tuples(2000, 21) if t[1] <= 199]
        b = [t for t in tuples(2000, 22) if t[1] <= 199]
        assert r.result_count == len(nested_loop_join(b, a, 1, 1)) == 200

    def test_all_modes_same_answer(self, join_machine):
        counts = set()
        for i, mode in enumerate(JoinMode):
            r = join_machine.run(
                Query.join(ScanNode("Bprime"), ScanNode("A"),
                           on=("unique2", "unique2"), mode=mode,
                           into=f"jm{i}")
            )
            counts.add(r.result_count)
        assert counts == {200}

    def test_three_way_join_joincselaselb(self, join_machine):
        # C join (selA join selB) — the paper's joinCselAselB shape.
        sel = RangePredicate("unique2", 0, 199)
        inner = ScanNode("A", sel)
        outer = ScanNode("B", sel)
        from repro.engine import JoinNode

        q = Query.join(
            build=ScanNode("C"),
            probe=JoinNode(outer, inner, "unique2", "unique2"),
            on=("unique1", "unique1"),
            into="j5",
        )
        r = join_machine.run(q)
        a = [t for t in tuples(2000, 21) if t[1] <= 199]
        b = [t for t in tuples(2000, 22) if t[1] <= 199]
        ab = nested_loop_join(b, a, 1, 1)
        c = tuples(200, 24)
        # join attr on probe side: the B-part unique1 sits at position 0.
        expected = nested_loop_join(c, ab, 0, 0)
        assert r.result_count == len(expected)

    def test_empty_build_side(self, join_machine):
        r = join_machine.run(
            Query.join(
                ScanNode("Bprime", RangePredicate("unique2", -5, -1)),
                ScanNode("A"),
                on=("unique2", "unique2"), into="j6",
            )
        )
        assert r.result_count == 0


class TestJoinOverflow:
    def _machine(self, join_memory):
        m = GammaMachine(
            GammaConfig(n_disk_sites=4, n_diskless=4,
                        join_memory_total=join_memory)
        )
        m.load_wisconsin("A", 2_000, seed=21)
        m.load_wisconsin("Bprime", 500, seed=23)
        return m

    def test_overflow_join_still_correct(self):
        # 500 build tuples * 208B * 1.2 ≈ 125 KB >> 20 KB of memory.
        m = self._machine(20_000)
        r = m.run(Query.join(ScanNode("Bprime"), ScanNode("A"),
                             on=("unique2", "unique2"), into="o"))
        expected = nested_loop_join(tuples(500, 23), tuples(2000, 21), 1, 1)
        assert sorted(m.catalog.lookup("o").records()) == expected
        assert r.max_overflows > 0

    def test_no_overflow_with_ample_memory(self):
        m = self._machine(10_000_000)
        r = m.run(Query.join(ScanNode("Bprime"), ScanNode("A"),
                             on=("unique2", "unique2"), into="o"))
        assert r.max_overflows == 0
        assert r.result_count == 500

    def test_less_memory_more_overflows_slower(self):
        results = {}
        for mem in (1_000_000, 40_000, 15_000):
            m = self._machine(mem)
            r = m.run(Query.join(ScanNode("Bprime"), ScanNode("A"),
                                 on=("unique2", "unique2"), into="o"))
            assert r.result_count == 500
            results[mem] = r
        assert results[15_000].max_overflows > results[40_000].max_overflows
        assert (
            results[15_000].response_time
            > results[40_000].response_time
            > results[1_000_000].response_time
        )

    def test_overflow_spool_io_counted(self):
        m = self._machine(20_000)
        r = m.run(Query.join(ScanNode("Bprime"), ScanNode("A"),
                             on=("unique2", "unique2"), into="o"))
        assert r.stats.get("spool_pages_written", 0) > 0
        assert r.stats.get("spool_pages_read", 0) > 0


class TestBitFilters:
    def test_bit_filter_same_answer_fewer_tuples_shipped(self):
        def run(use_filters):
            m = GammaMachine(
                GammaConfig(n_disk_sites=4, n_diskless=4,
                            use_bit_filters=use_filters)
            )
            m.load_wisconsin("A", 2_000, seed=21)
            m.load_wisconsin("Bprime", 100, seed=23)
            return m.run(
                Query.join(ScanNode("Bprime"), ScanNode("A"),
                           on=("unique2", "unique2"), into="o")
            )

        plain = run(False)
        filtered = run(True)
        assert plain.result_count == filtered.result_count == 100
        assert (
            filtered.stats["tuples_shipped"] < plain.stats["tuples_shipped"]
        )


class TestJoinModesTiming:
    def test_local_wins_on_partitioning_attribute(self):
        m = GammaMachine(GammaConfig(n_disk_sites=4, n_diskless=4))
        m.load_wisconsin("A", 8_000, seed=1)
        m.load_wisconsin("Bp", 800, seed=2)
        times = {}
        for mode in (JoinMode.LOCAL, JoinMode.REMOTE):
            m.drop_if_exists("o")
            times[mode] = m.run(
                Query.join(ScanNode("Bp"), ScanNode("A"),
                           on=("unique1", "unique1"), mode=mode, into="o")
            ).response_time
        assert times[JoinMode.LOCAL] < times[JoinMode.REMOTE]

    def test_remote_wins_on_nonpartitioning_attribute(self):
        m = GammaMachine(GammaConfig(n_disk_sites=4, n_diskless=4))
        m.load_wisconsin("A", 8_000, seed=1)
        m.load_wisconsin("Bp", 800, seed=2)
        times = {}
        for mode in (JoinMode.LOCAL, JoinMode.REMOTE):
            m.drop_if_exists("o")
            times[mode] = m.run(
                Query.join(ScanNode("Bp"), ScanNode("A"),
                           on=("unique2", "unique2"), mode=mode, into="o")
            ).response_time
        assert times[JoinMode.REMOTE] < times[JoinMode.LOCAL]
