"""Tests for the backend-agnostic physical IR and both plan compilers.

Each Wisconsin query shape is compiled — never executed — and the test
asserts the *dataflow structure*: which Exchange kind moves tuples across
each edge, and where each operator's fragments are placed.  Both backends
compile through the same :class:`~repro.engine.ir.PlanCompiler` walk; the
differences asserted here (hash join vs sort-merge join, selection
propagation vs none, diskless vs AMP placement) are exactly the planning
conventions the paper attributes to each machine.
"""

import pytest

from repro import (
    ExactMatch,
    GammaConfig,
    GammaMachine,
    Query,
    RangePredicate,
    TeradataConfig,
)
from repro.engine import ScanNode
from repro.engine.ir import (
    AggregateOp,
    Exchange,
    ExchangeKind,
    HashJoinProbeOp,
    HostSinkOp,
    Placement,
    PlanCompiler,
    ProjectOp,
    ScanOp,
    SortMergeJoinOp,
    SortOp,
    StoreOp,
)
from repro.engine.plan import AccessPath, JoinMode, TruePredicate
from repro.engine.planner import Planner
from repro.errors import PlanError
from repro.teradata import TeradataMachine
from repro.teradata.planner import TeradataPlanner


@pytest.fixture(scope="module")
def gamma():
    m = GammaMachine(GammaConfig.paper_default().with_sites(4))
    m.load_wisconsin("A", 1_000, seed=1, secondary_on=["unique2"])
    m.load_wisconsin("B", 1_000, seed=2)
    m.load_wisconsin("Bprime", 100, seed=3)
    return m


@pytest.fixture(scope="module")
def gamma_planner(gamma):
    return Planner(gamma.config, gamma.catalog)


@pytest.fixture(scope="module")
def teradata():
    m = TeradataMachine(TeradataConfig(n_amps=5))
    m.load_wisconsin("A", 1_000, seed=1, secondary_on=["unique2"])
    m.load_wisconsin("Bprime", 100, seed=3)
    return m


@pytest.fixture(scope="module")
def teradata_planner(teradata):
    return TeradataPlanner(teradata.config, teradata, teradata.costs)


class TestGammaSelections:
    def test_selection_scans_all_disk_sites(self, gamma_planner):
        ir = gamma_planner.plan(
            Query.select("A", RangePredicate("unique2", 0, 9))
        )
        scan = ir.root
        assert isinstance(scan, ScanOp)
        assert scan.sites == list(range(4))
        assert scan.placement.role == "disk-sites"
        assert isinstance(ir.sink, HostSinkOp)
        assert ir.sink.exchange.kind is ExchangeKind.MERGE

    def test_exact_match_on_partition_attr_prunes_to_one_site(
        self, gamma_planner
    ):
        ir = gamma_planner.plan(Query.select("A", ExactMatch("unique1", 7)))
        scan = ir.root
        assert len(scan.sites) == 1
        assert scan.placement.sites == tuple(scan.sites)

    def test_store_sink_sprays_round_robin(self, gamma_planner):
        ir = gamma_planner.plan(
            Query.select("A", RangePredicate("unique1", 0, 99), into="out")
        )
        assert isinstance(ir.sink, StoreOp)
        assert ir.sink.into == "out"
        assert ir.sink.exchange.kind is ExchangeKind.ROUND_ROBIN
        assert ir.sink.placement.role == "disk-sites"


class TestGammaJoins:
    def test_hash_join_splits_both_streams_on_join_attr(self, gamma_planner):
        ir = gamma_planner.plan(
            Query.join(ScanNode("Bprime"), ScanNode("A"),
                       on=("unique2", "unique2"))
        )
        join = ir.root
        assert isinstance(join, HashJoinProbeOp)
        assert join.build_input.exchange == Exchange(
            ExchangeKind.HASH, attr="unique2"
        )
        assert join.exchange == Exchange(ExchangeKind.HASH, attr="unique2")
        assert join.placement == Placement("join-sites", mode=JoinMode.REMOTE)

    def test_selection_propagates_to_the_other_side(self, gamma_planner):
        # Gamma's joinAselB trick: the selection on B's join attribute is
        # propagated to A's scan, shrinking the probe stream.
        ir = gamma_planner.plan(
            Query.join(
                ScanNode("B", RangePredicate("unique1", 0, 99)),
                ScanNode("A"),
                on=("unique1", "unique1"),
            )
        )
        probe = ir.root.probe
        assert isinstance(probe, ScanOp)
        assert not isinstance(probe.predicate, TruePredicate)


class TestGammaAggregatesSortsProjects:
    def test_grouped_aggregate_hashes_on_group_attr(self, gamma_planner):
        ir = gamma_planner.plan(
            Query.aggregate("A", "sum", attr="unique1", group_by="ten")
        )
        agg = ir.root
        assert isinstance(agg, AggregateOp)
        assert agg.stage == "grouped"
        assert agg.exchange == Exchange(ExchangeKind.HASH, attr="ten")
        assert agg.placement.role == "diskless"

    def test_scalar_aggregate_is_partial_plus_combine(self, gamma_planner):
        ir = gamma_planner.plan(Query.aggregate("A", "min", attr="unique1"))
        combine = ir.root
        assert combine.stage == "combine"
        assert combine.exchange.kind is ExchangeKind.MERGE
        partial = combine.source
        assert partial.stage == "partial"
        assert partial.exchange.kind is ExchangeKind.ROUND_ROBIN

    def test_sort_range_splits_across_sorters(self, gamma_planner):
        ir = gamma_planner.plan(Query.select("A", sort_by="unique2"))
        sort = ir.root
        assert isinstance(sort, SortOp)
        assert sort.exchange.kind is ExchangeKind.RANGE
        # n_diskless sorters need n-1 range boundaries.
        assert len(sort.exchange.boundaries) == 3
        assert sort.placement.role == "diskless"

    def test_unique_project_record_hashes(self, gamma_planner):
        ir = gamma_planner.plan(
            Query.select("A", project=["ten"], unique=True)
        )
        project = ir.root
        assert isinstance(project, ProjectOp)
        assert project.exchange.kind is ExchangeKind.RECORD_HASH
        assert project.exchange.positions == [
            gamma_planner.catalog.lookup("A").schema.position("ten")
        ]

    def test_stream_project_round_robins(self, gamma_planner):
        ir = gamma_planner.plan(Query.select("A", project=["ten"]))
        assert ir.root.exchange.kind is ExchangeKind.ROUND_ROBIN


class TestTeradataLowering:
    def test_key_join_ships_nothing(self, teradata_planner):
        ir = teradata_planner.plan(
            Query.join(ScanNode("Bprime"), ScanNode("A"),
                       on=("unique1", "unique1"))
        )
        join = ir.root
        assert isinstance(join, SortMergeJoinOp)
        assert join.left_exchange.kind is ExchangeKind.LOCAL
        assert join.right_exchange.kind is ExchangeKind.LOCAL
        assert join.placement.role == "amps"

    def test_nonkey_join_hashes_both_streams(self, teradata_planner):
        ir = teradata_planner.plan(
            Query.join(ScanNode("Bprime"), ScanNode("A"),
                       on=("unique2", "unique2"))
        )
        join = ir.root
        assert join.left_exchange == Exchange(
            ExchangeKind.HASH, attr="unique2"
        )
        assert join.right_exchange == Exchange(
            ExchangeKind.HASH, attr="unique2"
        )

    def test_no_selection_propagation(self, teradata_planner):
        ir = teradata_planner.plan(
            Query.join(
                ScanNode("Bprime", RangePredicate("unique1", 0, 9)),
                ScanNode("A"),
                on=("unique1", "unique1"),
            )
        )
        assert isinstance(ir.root.right.predicate, TruePredicate)

    def test_exact_match_on_key_hash_addresses_one_amp(
        self, teradata, teradata_planner
    ):
        ir = teradata_planner.plan(Query.select("A", ExactMatch("unique1", 7)))
        scan = ir.root
        assert scan.path is AccessPath.CLUSTERED_EXACT
        assert scan.sites == [
            teradata.lookup("A").amp_of_key(7, teradata.config.n_amps)
        ]

    def test_index_cost_comparison(self, teradata_planner):
        one_pct = teradata_planner.plan(
            Query.select("A", RangePredicate("unique2", 0, 9))
        )
        ten_pct = teradata_planner.plan(
            Query.select("A", RangePredicate("unique2", 0, 99))
        )
        assert one_pct.root.path is AccessPath.NONCLUSTERED_INDEX
        assert ten_pct.root.path is AccessPath.FILE_SCAN

    def test_scalar_aggregate_partials_fold_in_place(self, teradata_planner):
        ir = teradata_planner.plan(Query.aggregate("A", "count"))
        combine = ir.root
        assert combine.stage == "combine"
        assert combine.source.exchange.kind is ExchangeKind.LOCAL
        assert combine.placement.role == "amps"

    def test_store_sink_hashes_on_result_key(self, teradata_planner):
        ir = teradata_planner.plan(
            Query.select("A", RangePredicate("unique1", 0, 99), into="out")
        )
        assert ir.sink.exchange == Exchange(ExchangeKind.HASH, attr="unique1")

    def test_projects_and_sorts_rejected(self, teradata_planner):
        with pytest.raises(PlanError):
            teradata_planner.plan(Query.select("A", project=["ten"]))
        with pytest.raises(PlanError):
            teradata_planner.plan(Query.select("A", sort_by="unique2"))


class TestDescribe:
    def test_exchange_describe_round_trips_kind(self):
        assert Exchange(ExchangeKind.HASH, attr="a").describe() == "hash(a)"
        assert Exchange(
            ExchangeKind.RANGE, attr="a", boundaries=[1, 2]
        ).describe() == "range(a x3)"
        assert Exchange(
            ExchangeKind.RECORD_HASH, positions=[0, 1]
        ).describe() == "record-hash([0, 1])"
        assert Exchange(ExchangeKind.MERGE).describe() == "merge"
        assert Exchange(ExchangeKind.LOCAL).describe() == "local"

    def test_placement_describe(self):
        assert Placement("diskless").describe() == "diskless"
        assert Placement("amps", sites=(0, 1)).describe() == "2 sites"
        assert (
            Placement("join-sites", mode=JoinMode.REMOTE).describe()
            == "join-sites:remote"
        )

    def test_plan_description_names_the_operators(self, gamma_planner):
        ir = gamma_planner.plan(
            Query.join(ScanNode("Bprime"), ScanNode("A"),
                       on=("unique2", "unique2"), into="j")
        )
        assert ir.description.startswith("join[remote](scan(Bprime")
        assert ir.describe().startswith("store[j](join[remote](")

    def test_teradata_description(self, teradata_planner):
        ir = teradata_planner.plan(
            Query.join(ScanNode("Bprime"), ScanNode("A"),
                       on=("unique2", "unique2"))
        )
        assert ir.description.startswith("sort-merge[unique2](scan(Bprime")


class TestPlanErrors:
    def test_unknown_join_attribute(self, gamma_planner):
        with pytest.raises(PlanError, match="build attribute"):
            gamma_planner.plan(
                Query.join(ScanNode("Bprime"), ScanNode("A"),
                           on=("nope", "unique1"))
            )
        with pytest.raises(PlanError, match="probe attribute"):
            gamma_planner.plan(
                Query.join(ScanNode("Bprime"), ScanNode("A"),
                           on=("unique1", "nope"))
            )

    def test_unknown_aggregate_attribute(self, gamma_planner):
        with pytest.raises(PlanError, match="aggregate attribute"):
            gamma_planner.plan(Query.aggregate("A", "sum", attr="nope"))
        with pytest.raises(PlanError, match="group-by attribute"):
            gamma_planner.plan(
                Query.aggregate("A", "count", group_by="nope")
            )

    def test_unknown_plan_node(self, gamma_planner):
        with pytest.raises(PlanError, match="unknown plan node"):
            gamma_planner.compile_node(object())

    def test_base_compiler_hooks_are_abstract(self, gamma):
        compiler = PlanCompiler(gamma.config, gamma.catalog)
        with pytest.raises(NotImplementedError):
            compiler.plan(Query.select("A"))
