"""Tests for the projection operator and range-partition site pruning."""

import pytest

from repro import (
    GammaConfig,
    GammaMachine,
    Query,
    RangePredicate,
    RangePartitioned,
    UniformRange,
)
from repro.engine import ScanNode
from repro.engine.plan import ProjectNode
from repro.errors import PlanError
from repro.workloads import generate_tuples, wisconsin_schema


@pytest.fixture
def machine():
    m = GammaMachine(GammaConfig(n_disk_sites=4, n_diskless=4))
    m.load_wisconsin("r", 2_000, seed=31)
    return m


class TestProjection:
    def test_streaming_projection(self, machine):
        r = machine.run(
            Query.select("r", RangePredicate("unique2", 0, 99),
                         project=["unique1", "ten"])
        )
        assert r.result_count == 100
        assert all(len(t) == 2 for t in r.tuples)

    def test_projection_values_match_oracle(self, machine):
        r = machine.run(
            Query.select("r", RangePredicate("unique2", 0, 49),
                         project=["unique2", "hundred"])
        )
        expected = sorted(
            (t[1], t[6]) for t in generate_tuples(2_000, seed=31)
            if t[1] <= 49
        )
        assert sorted(r.tuples) == expected

    def test_unique_projection_deduplicates(self, machine):
        r = machine.run(Query.select("r", project=["ten"], unique=True))
        assert sorted(r.tuples) == [(i,) for i in range(10)]

    def test_unique_projection_multi_attr(self, machine):
        r = machine.run(
            Query.select("r", project=["two", "ten"], unique=True)
        )
        # two = unique1 % 2 and ten = unique1 % 10 are correlated:
        # two is determined by ten, so exactly 10 distinct pairs exist.
        assert r.result_count == 10

    def test_streaming_keeps_duplicates(self, machine):
        r = machine.run(Query.select("r", project=["ten"]))
        assert r.result_count == 2_000

    def test_projection_of_join(self, machine):
        machine.load_wisconsin("s", 200, seed=32)
        q = Query(
            ProjectNode(
                __import__("repro.engine", fromlist=["JoinNode"]).JoinNode(
                    ScanNode("s"), ScanNode("r"), "unique2", "unique2"
                ),
                ["unique1", "unique1_r"],
                unique=False,
            ),
            into=None,
        )
        r = machine.run(q)
        assert r.result_count == 200
        assert all(len(t) == 2 for t in r.tuples)

    def test_stored_projection_schema(self, machine):
        machine.run(
            Query.select("r", project=["four", "twenty"], unique=True,
                         into="proj_out")
        )
        rel = machine.catalog.lookup("proj_out")
        assert rel.schema.names() == ["four", "twenty"]
        assert rel.schema.tuple_bytes == 8

    def test_unknown_projection_attr_rejected(self, machine):
        with pytest.raises(Exception):
            machine.run(Query.select("r", project=["zzz"]))

    def test_empty_projection_rejected(self):
        with pytest.raises(PlanError):
            ProjectNode(ScanNode("r"), [])

    def test_unique_projection_costs_more_than_streaming(self, machine):
        stream = machine.run(Query.select("r", project=["ten"], into="p1"))
        unique = machine.run(
            Query.select("r", project=["ten"], unique=True, into="p2")
        )
        assert unique.result_count < stream.result_count
        # Dedup work happens but emits far fewer tuples; both finite.
        assert unique.response_time > 0


class TestRangePartitionPruning:
    def _machines(self):
        ranged = GammaMachine(GammaConfig(n_disk_sites=4, n_diskless=4))
        records = list(generate_tuples(2_000, seed=31))
        ranged.load_relation(
            "r", wisconsin_schema(), records,
            partitioning=UniformRange("unique1"), clustered_on="unique1",
        )
        hashed = GammaMachine(GammaConfig(n_disk_sites=4, n_diskless=4))
        hashed.load_wisconsin("r", 2_000, seed=31, clustered_on="unique1")
        return ranged, hashed

    def test_narrow_range_prunes_to_one_site(self):
        ranged, _hashed = self._machines()
        r = ranged.run(Query.select("r", RangePredicate("unique1", 0, 99)))
        assert "sites=1" in r.plan
        assert r.result_count == 100

    def test_wide_range_touches_all_sites(self):
        ranged, _hashed = self._machines()
        r = ranged.run(Query.select("r", RangePredicate("unique1", 0, 1999)))
        assert "sites=4" in r.plan
        assert r.result_count == 2_000

    def test_boundary_spanning_range_touches_two_sites(self):
        ranged, _hashed = self._machines()
        # Uniform split of 2000 keys over 4 sites: boundaries near 500.
        r = ranged.run(Query.select("r", RangePredicate("unique1", 450, 550)))
        assert "sites=2" in r.plan
        assert r.result_count == 101

    def test_pruning_wins_for_tiny_ranges(self):
        # Startup costs dominate tiny retrievals: activating one site
        # beats activating four.
        ranged, hashed = self._machines()
        pr = ranged.run(Query.select("r", RangePredicate("unique1", 10, 14)))
        ph = hashed.run(Query.select("r", RangePredicate("unique1", 10, 14)))
        assert pr.result_count == ph.result_count == 5
        assert pr.response_time < ph.response_time

    def test_pruning_loses_for_large_ranges(self):
        # ... but a single site retrieves a big range serially, the
        # declustering trade-off [RIES78] studies.
        ranged, hashed = self._machines()
        pr = ranged.run(Query.select("r", RangePredicate("unique1", 0, 399)))
        ph = hashed.run(Query.select("r", RangePredicate("unique1", 0, 399)))
        assert pr.result_count == ph.result_count == 400
        assert pr.response_time > ph.response_time

    def test_non_partitioning_range_not_pruned(self):
        ranged, _hashed = self._machines()
        r = ranged.run(Query.select("r", RangePredicate("unique2", 0, 99)))
        assert "sites=4" in r.plan

    def test_user_specified_ranges(self):
        m = GammaMachine(GammaConfig(n_disk_sites=4, n_diskless=4))
        records = list(generate_tuples(2_000, seed=31))
        m.load_relation(
            "r", wisconsin_schema(), records,
            partitioning=RangePartitioned("unique1", [499, 999, 1499]),
            clustered_on="unique1",
        )
        r = m.run(Query.select("r", RangePredicate("unique1", 1000, 1100)))
        assert "sites=1" in r.plan
        assert r.result_count == 101
