"""Tests for the parallel range-sort operator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GammaConfig, GammaMachine, Query, RangePredicate
from repro.engine import JoinNode, ScanNode
from repro.engine.plan import SortNode
from repro.workloads import generate_tuples


@pytest.fixture
def machine():
    m = GammaMachine(GammaConfig(n_disk_sites=4, n_diskless=4))
    m.load_wisconsin("r", 2_000, seed=91)
    return m


class TestSortCorrectness:
    def test_ascending_order(self, machine):
        r = machine.run(Query.select("r", sort_by="unique2"))
        keys = [t[1] for t in r.tuples]
        assert keys == sorted(keys)
        assert len(keys) == 2_000

    def test_descending_order(self, machine):
        r = machine.run(
            Query.select("r", RangePredicate("unique2", 0, 499),
                         sort_by="unique2", descending=True)
        )
        keys = [t[1] for t in r.tuples]
        assert keys == sorted(keys, reverse=True)

    def test_sort_preserves_multiset(self, machine):
        r = machine.run(Query.select("r", sort_by="ten"))
        expected = sorted(generate_tuples(2_000, seed=91),
                          key=lambda t: t[4])
        assert [t[4] for t in r.tuples] == [t[4] for t in expected]
        assert sorted(r.tuples) == sorted(expected)

    def test_sort_uses_parallel_slices(self, machine):
        r = machine.run(Query.select("r", sort_by="unique1"))
        assert "x4" in r.plan  # four sorter nodes

    def test_sort_over_projection(self, machine):
        r = machine.run(
            Query.select("r", project=["unique2", "hundred"],
                         sort_by="unique2")
        )
        keys = [t[0] for t in r.tuples]
        assert keys == sorted(keys)

    def test_sort_over_join(self, machine):
        machine.load_wisconsin("s", 200, seed=92)
        q = Query(
            SortNode(
                JoinNode(ScanNode("s"), ScanNode("r"),
                         "unique2", "unique2"),
                "unique1",
            )
        )
        r = machine.run(q)
        # 'unique1' resolves to the build (s) side of the concat schema.
        keys = [t[0] for t in r.tuples]
        assert keys == sorted(keys)
        assert len(keys) == 200

    def test_sort_grouped_aggregate_output(self, machine):
        from repro.engine.plan import AggregateNode

        q = Query(
            SortNode(
                AggregateNode(ScanNode("r"), "count", None, "ten"),
                "count", descending=True,
            )
        )
        r = machine.run(q)
        counts = [t[1] for t in r.tuples]
        assert counts == sorted(counts, reverse=True)

    def test_stored_sorted_result(self, machine):
        r = machine.run(Query.select("r", sort_by="unique1", into="sorted_r"))
        assert r.result_count == 2_000
        assert machine.catalog.lookup("sorted_r").num_records == 2_000

    def test_single_sorter_fallback_still_correct(self):
        # No diskless nodes and 1 disk site -> unparallel sort.
        m = GammaMachine(GammaConfig(n_disk_sites=1, n_diskless=0))
        m.load_wisconsin("r", 500, seed=93)
        r = m.run(Query.select("r", sort_by="unique2"))
        keys = [t[1] for t in r.tuples]
        assert keys == sorted(keys)

    def test_sort_costs_more_than_unsorted(self, machine):
        plain = machine.run(Query.select("r", RangePredicate("unique2", 0, 999)))
        ordered = machine.run(
            Query.select("r", RangePredicate("unique2", 0, 999),
                         sort_by="unique2")
        )
        assert ordered.response_time > plain.response_time


class TestQuelSort:
    def test_quel_sort_clause(self, machine):
        from repro.quel import QuelSession

        s = QuelSession(machine)
        s.execute("range of t is r")
        r = s.execute(
            "retrieve (t.unique1) where t.unique1 < 300 sort by t.unique1"
        )
        assert [t[0] for t in r.tuples] == list(range(300))

    def test_quel_sort_descending(self, machine):
        from repro.quel import QuelSession

        s = QuelSession(machine)
        s.execute("range of t is r")
        r = s.execute(
            "retrieve (t.unique1) where t.unique1 < 50"
            " sort by t.unique1 descending"
        )
        assert [t[0] for t in r.tuples] == list(reversed(range(50)))


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=10, max_value=400),
    attr_pos=st.sampled_from([("unique1", 0), ("unique2", 1), ("ten", 4)]),
    descending=st.booleans(),
)
def test_property_sort_equals_python_sorted(n, attr_pos, descending):
    attr, pos = attr_pos
    m = GammaMachine(GammaConfig(n_disk_sites=2, n_diskless=2))
    m.load_wisconsin("r", n, seed=97)
    r = m.run(Query.select("r", sort_by=attr, descending=descending))
    got = [t[pos] for t in r.tuples]
    assert got == sorted(got, reverse=descending)
    assert len(got) == n
