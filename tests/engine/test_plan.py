"""Tests for predicates, plan nodes and the Query constructors."""

import pytest

from repro.engine import (
    AggregateNode,
    ExactMatch,
    JoinMode,
    JoinNode,
    Query,
    RangePredicate,
    ScanNode,
    TruePredicate,
)
from repro.errors import PlanError
from repro.storage import Schema, int_attr


def schema():
    return Schema([int_attr("a"), int_attr("b")])


class TestPredicates:
    def test_true_predicate_matches_all(self):
        pred = TruePredicate().compile(schema())
        assert pred((1, 2)) and pred((-5, 0))
        assert TruePredicate().selectivity(100) == 1.0

    def test_range_inclusive(self):
        pred = RangePredicate("a", 5, 10).compile(schema())
        assert pred((5, 0)) and pred((10, 0))
        assert not pred((4, 0)) and not pred((11, 0))

    def test_range_selectivity_uniform_estimate(self):
        assert RangePredicate("a", 0, 99).selectivity(10_000) == pytest.approx(0.01)
        assert RangePredicate("a", 0, 999).selectivity(1_000) == 1.0

    def test_range_selectivity_clamped(self):
        assert RangePredicate("a", 0, 10**9).selectivity(100) == 1.0
        assert RangePredicate("a", 10, 5).selectivity(100) == 0.0

    def test_exact_match(self):
        pred = ExactMatch("b", 7).compile(schema())
        assert pred((0, 7))
        assert not pred((7, 0))
        assert ExactMatch("b", 7).selectivity(1000) == pytest.approx(0.001)

    def test_unknown_attribute_raises_on_compile(self):
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            RangePredicate("zzz", 0, 1).compile(schema())

    def test_describe(self):
        assert "a" in RangePredicate("a", 0, 1).describe()
        assert "=" in ExactMatch("a", 1).describe()

    def test_describe_round_trips_bounds_and_value(self):
        assert RangePredicate("a", 5, 9).describe() == "5 <= a <= 9"
        assert ExactMatch("b", 7).describe() == "b = 7"


class TestQueryConstructors:
    def test_select(self):
        q = Query.select("r", RangePredicate("a", 0, 1), into="out")
        assert isinstance(q.root, ScanNode)
        assert q.into == "out"

    def test_join_defaults_remote(self):
        q = Query.join(ScanNode("b"), ScanNode("p"), on=("a", "a"))
        assert isinstance(q.root, JoinNode)
        assert q.root.mode is JoinMode.REMOTE

    def test_aggregate_validation(self):
        with pytest.raises(PlanError):
            Query.aggregate("r", op="median")
        with pytest.raises(PlanError):
            Query.aggregate("r", op="sum")  # sum needs an attribute

    def test_count_needs_no_attribute(self):
        q = Query.aggregate("r", op="count")
        assert isinstance(q.root, AggregateNode)

    def test_children(self):
        join = JoinNode(ScanNode("b"), ScanNode("p"), "a", "a")
        assert len(join.children()) == 2
        assert ScanNode("r").children() == []
        assert len(AggregateNode(ScanNode("r"), "count").children()) == 1

    def test_empty_projection_rejected(self):
        with pytest.raises(PlanError):
            Query.select("r", project=[])
