"""Tests for timed bulk loading and catalog statistics."""

import pytest

from repro import (
    GammaConfig,
    GammaMachine,
    Hashed,
    Query,
    RangePredicate,
    RoundRobin,
    UniformRange,
)
from repro.catalog import AttrStats, collect_statistics
from repro.workloads import generate_tuples, wisconsin_schema


def records(n=1_000, seed=41):
    return list(generate_tuples(n, seed=seed))


class TestTimedLoad:
    def _load(self, n=1_000, **kwargs):
        m = GammaMachine(GammaConfig(n_disk_sites=4, n_diskless=4))
        rel, result = m.load_relation_timed(
            "r", wisconsin_schema(), records(n),
            partitioning=kwargs.pop("partitioning", Hashed("unique1")),
            **kwargs,
        )
        return m, rel, result

    def test_load_takes_time_and_counts_tuples(self):
        _m, _rel, result = self._load()
        assert result.response_time > 0
        assert result.result_count == 1_000
        assert result.stats["load_packets"] > 0

    def test_loaded_relation_is_queryable(self):
        m, _rel, _res = self._load(clustered_on="unique1")
        q = m.run(Query.select("r", RangePredicate("unique1", 0, 9)))
        assert q.result_count == 10

    def test_load_time_scales_with_cardinality(self):
        _m, _rel, small = self._load(n=500)
        _m, _rel, big = self._load(n=2_000)
        assert 2.0 < big.response_time / small.response_time < 6.0

    def test_index_builds_cost_extra(self):
        _m, _rel, plain = self._load()
        _m, _rel, indexed = self._load(
            clustered_on="unique1", secondary_on=["unique2"]
        )
        assert indexed.response_time > plain.response_time
        assert indexed.stats["index_pages_built"] > 0

    def test_round_robin_strategy(self):
        m, rel, _res = self._load(partitioning=RoundRobin())
        sizes = rel.fragment_sizes()
        assert max(sizes) - min(sizes) <= 1

    def test_uniform_range_strategy(self):
        m, rel, _res = self._load(partitioning=UniformRange("unique1"))
        highs = [
            max(r[0] for r in frag.records()) for frag in rel.fragments
        ]
        assert highs == sorted(highs)

    def test_more_sites_load_faster(self):
        def load_with(sites):
            m = GammaMachine(GammaConfig(n_disk_sites=sites,
                                         n_diskless=sites))
            _rel, result = m.load_relation_timed(
                "r", wisconsin_schema(), records(2_000),
                partitioning=Hashed("unique1"), clustered_on="unique1",
            )
            return result.response_time

        # The host NIC serialises shipping, but per-site page writes and
        # index builds parallelise.
        assert load_with(8) < load_with(2)


class TestCatalogStatistics:
    def test_collected_on_load(self):
        m = GammaMachine(GammaConfig(n_disk_sites=2, n_diskless=2))
        rel = m.load_wisconsin("r", 1_000, seed=41)
        stats = rel.stats_for("unique1")
        assert stats == AttrStats(0, 999, 1000)
        assert rel.stats_for("ten").width == 10

    def test_string_attrs_have_no_stats(self):
        m = GammaMachine(GammaConfig(n_disk_sites=2, n_diskless=2))
        rel = m.load_wisconsin("r", 100, seed=41)
        assert rel.stats_for("stringu1") is None

    def test_range_selectivity(self):
        stats = AttrStats(0, 99, 100)
        assert stats.range_selectivity(0, 9) == pytest.approx(0.1)
        assert stats.range_selectivity(-50, 199) == 1.0
        assert stats.range_selectivity(500, 600) == 0.0

    def test_collect_statistics_empty(self):
        assert collect_statistics(wisconsin_schema(), []) == {}

    def test_planner_uses_stats_for_derived_attrs(self):
        # 'ten' spans 0..9: a predicate ten=0 is a 10% selection, so the
        # estimate must be ~n/10, not ~1.
        from repro.engine.planner import Planner

        m = GammaMachine(GammaConfig(n_disk_sites=2, n_diskless=2))
        m.load_wisconsin("r", 1_000, seed=41)
        planner = Planner(m.config, m.catalog)
        plan = planner.plan(Query.select("r", RangePredicate("ten", 0, 0)))
        assert plan.root.estimated_matches == pytest.approx(100)
