"""Tests for split tables, bit-vector filters and ports plumbing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import BitVectorFilter
from repro.engine.split_table import Destination, SplitTable
from repro.engine.node import ExecutionContext
from repro.engine.ports import InputPort
from repro.errors import ConfigError, PlanError
from repro.hardware import GammaConfig, GammaCosts
from repro.storage import Schema, int_attr


def make_destinations(n=4):
    ctx = ExecutionContext(GammaConfig(n_disk_sites=max(n, 1), n_diskless=0))
    dests = []
    for i in range(n):
        node = ctx.disk_nodes[i]
        dests.append(Destination(node.name, InputPort(ctx, f"p{i}", node)))
    return dests


class TestSplitTable:
    def test_hash_split_routes_consistently(self):
        schema = Schema([int_attr("k")])
        table = SplitTable.by_hash(make_destinations(), schema, "k", GammaCosts())
        for v in range(200):
            assert table.route((v,)) == table.route((v,))
            assert 0 <= table.route((v,)) < 4

    def test_hash_split_spreads(self):
        schema = Schema([int_attr("k")])
        table = SplitTable.by_hash(make_destinations(), schema, "k", GammaCosts())
        counts = [0] * 4
        for v in range(4000):
            counts[table.route((v,))] += 1
        assert max(counts) < 1.3 * min(counts)

    def test_round_robin_cycles(self):
        table = SplitTable.round_robin(make_destinations())
        assert [table.route((i,)) for i in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_single_always_zero(self):
        table = SplitTable.single(make_destinations(1)[0])
        assert table.route((99,)) == 0

    def test_empty_destinations_rejected(self):
        with pytest.raises(PlanError):
            SplitTable.round_robin([])

    def test_bit_filter_drops_nonmembers(self):
        schema = Schema([int_attr("k")])
        bf = BitVectorFilter()
        for v in range(50):
            bf.add(v)
        table = SplitTable.by_hash(
            make_destinations(), schema, "k", GammaCosts(), bit_filter=bf
        )
        # members always route; non-members mostly dropped (None).
        assert all(table.route((v,)) is not None for v in range(50))
        dropped = sum(
            1 for v in range(10_000, 20_000) if table.route((v,)) is None
        )
        assert dropped > 9000


class TestBitVectorFilter:
    def test_no_false_negatives(self):
        bf = BitVectorFilter()
        values = list(range(0, 5000, 7))
        for v in values:
            bf.add(v)
        assert all(bf.might_contain(v) for v in values)

    def test_low_false_positive_rate(self):
        bf = BitVectorFilter(n_bits=1 << 16)
        for v in range(1000):
            bf.add(v)
        fps = sum(1 for v in range(100_000, 110_000) if bf.might_contain(v))
        assert fps < 1000  # well under 10%

    def test_union(self):
        a = BitVectorFilter()
        b = BitVectorFilter()
        a.add(1)
        b.add(2)
        a.union(b)
        assert a.might_contain(1) and a.might_contain(2)

    def test_union_shape_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            BitVectorFilter(n_bits=1024).union(BitVectorFilter(n_bits=2048))

    def test_invalid_construction_rejected(self):
        with pytest.raises(ConfigError):
            BitVectorFilter(n_bits=4)
        with pytest.raises(ConfigError):
            BitVectorFilter(n_hashes=0)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(), max_size=200))
    def test_property_membership_superset(self, values):
        bf = BitVectorFilter()
        for v in values:
            bf.add(v)
        assert all(bf.might_contain(v) for v in values)


class TestTupleConservation:
    """Every tuple routed through a split table lands at exactly one port."""

    @settings(max_examples=20, deadline=None)
    @given(
        n_dests=st.integers(min_value=1, max_value=8),
        n_tuples=st.integers(min_value=0, max_value=500),
        kind=st.sampled_from(["hash", "rr"]),
    )
    def test_property_conservation(self, n_dests, n_tuples, kind):
        schema = Schema([int_attr("k")])
        dests = make_destinations(max(n_dests, 1))[:n_dests]
        if kind == "hash":
            table = SplitTable.by_hash(dests, schema, "k", GammaCosts())
        else:
            table = SplitTable.round_robin(dests)
        counts = [0] * n_dests
        for v in range(n_tuples):
            idx = table.route((v,))
            assert idx is not None
            counts[idx] += 1
        assert sum(counts) == n_tuples
