"""Golden end-time tests: the simulated timeline is a contract.

These response times were recorded from the straightforward (pre-fast-path)
simulation kernel.  Every kernel or engine optimization must keep them
**bit-identical** — an optimization that shifts a timestamp by one ULP has
changed simulated behaviour, not just made the simulator faster.  One query
per operator family: file scan, hash join, grouped aggregate, and an
index-maintaining update.
"""

from repro.bench import build_gamma
from repro.bench.harness import run_stored
from repro.engine import Query
from repro.hardware import GammaConfig
from repro.workloads.queries import join_abprime, selection_query, update_suite

N = 10_000

#: Exact simulated response times (seconds) from the reference kernel.
GOLDEN = {
    "scan": 3.1857478276422686,
    "join": 10.598602429268281,
    "aggregate": 9.055588640650395,
    "update": 0.6692377170731704,
}


def _machine():
    return build_gamma(
        GammaConfig.paper_default().with_sites(4),
        relations=[
            ("golden", N, "heap"),
            ("goldenB", N // 10, "heap"),
            ("goldenIdx", N, "indexed"),
        ],
    )


def test_golden_end_times_bit_identical():
    machine = _machine()
    scan = run_stored(
        machine, lambda into: selection_query("golden", N, 0.01, into=into)
    )
    join = run_stored(
        machine,
        lambda into: join_abprime("golden", "goldenB", key=False, into=into),
    )
    agg = machine.run(
        Query.aggregate("golden", op="sum", attr="unique1", group_by="ten")
    )
    upd = machine.update(
        update_suite("goldenIdx", N)["modify 1 tuple (key attribute)"]
    )
    assert scan.result_count == 100
    assert join.result_count == 1000
    assert scan.response_time == GOLDEN["scan"]
    assert join.response_time == GOLDEN["join"]
    assert agg.response_time == GOLDEN["aggregate"]
    assert upd.response_time == GOLDEN["update"]


def test_golden_end_times_with_profiling():
    """The profiler is passive: clocks stay bit-identical with it on."""
    machine = _machine()
    scan = run_stored(
        machine,
        lambda into: selection_query("golden", N, 0.01, into=into),
        profile=True,
    )
    join = run_stored(
        machine,
        lambda into: join_abprime("golden", "goldenB", key=False, into=into),
        profile=True,
    )
    agg = machine.run(
        Query.aggregate("golden", op="sum", attr="unique1", group_by="ten"),
        profile=True,
    )
    upd = machine.update(
        update_suite("goldenIdx", N)["modify 1 tuple (key attribute)"],
        profile=True,
    )
    assert scan.response_time == GOLDEN["scan"]
    assert join.response_time == GOLDEN["join"]
    assert agg.response_time == GOLDEN["aggregate"]
    assert upd.response_time == GOLDEN["update"]
    for result in (scan, join, agg, upd):
        assert result.profile is not None
        assert result.profile.elapsed == result.response_time
    # The join profile separates the build and probe phases.
    phases = {
        phase
        for span in join.profile.spans.values()
        for phase in span.by_phase
    }
    assert "build" in phases and "probe" in phases


def test_golden_end_times_with_telemetry():
    """The telemetry sampler is passive: the kernel pulls it without
    scheduling events, so clocks stay bit-identical with sampling on."""
    from repro.metrics import TelemetrySampler

    machine = _machine()
    scan = run_stored(
        machine,
        lambda into: selection_query("golden", N, 0.01, into=into),
        telemetry=TelemetrySampler(interval=0.25),
    )
    join = run_stored(
        machine,
        lambda into: join_abprime("golden", "goldenB", key=False, into=into),
        telemetry=TelemetrySampler(interval=0.1),
    )
    agg_sampler = TelemetrySampler(interval=0.25)
    agg = machine.run(
        Query.aggregate("golden", op="sum", attr="unique1", group_by="ten"),
        telemetry=agg_sampler,
    )
    upd = machine.update(
        update_suite("goldenIdx", N)["modify 1 tuple (key attribute)"],
        telemetry=TelemetrySampler(interval=0.25),
    )
    assert scan.response_time == GOLDEN["scan"]
    assert join.response_time == GOLDEN["join"]
    assert agg.response_time == GOLDEN["aggregate"]
    assert upd.response_time == GOLDEN["update"]
    # The sampler did observe the run it rode along with.
    assert agg_sampler.samples == int(GOLDEN["aggregate"] / 0.25)
    assert agg_sampler.series["cluster.cpu.util.mean"].values
