"""Parity tests: every columnar fast path must agree with its scalar
twin on randomized inputs, including the values that force fallbacks
(floats, bools, strings, negative and 64-bit-plus integers)."""

import random

import pytest

from repro.catalog import gamma_hash
from repro.catalog.partitioning import Hashed, PartitioningStrategy
from repro.engine.bitfilter import BitVectorFilter
from repro.engine.columnar import (
    HAVE_NUMPY,
    NUMPY_THRESHOLD,
    BatchedBitProbe,
    ColumnBatch,
    hash_route_batch,
    partition_batch,
)
from repro.engine.plan import ExactMatch, RangePredicate, TruePredicate
from repro.engine.split_table import Destination, SplitTable
from repro.hardware import GammaConfig
from repro.storage import Schema
from repro.storage.schema import int_attr, string_attr

RNG_SEED = 19880601


def _schema() -> Schema:
    """A 3-attribute schema matching this file's (int, int, str) records."""
    return Schema([
        int_attr("unique1"), int_attr("unique2"), string_attr("padding"),
    ])


def _int_records(rng, count, lo=0, hi=1 << 40):
    return [
        (rng.randrange(lo, hi), rng.randrange(lo, hi), f"s{i}")
        for i in range(count)
    ]


def _mixed_records(rng, count):
    """Batches that must reject the vector path: non-int and out-of-range
    key values mixed among plain ints."""
    pool = [
        lambda: rng.randrange(0, 1 << 40),          # vector-eligible
        lambda: -rng.randrange(1, 1 << 20),          # negative
        lambda: (1 << 61) - 1 + rng.randrange(4),    # Mersenne wrap
        lambda: rng.random() * 1e6,                  # float truncation trap
        lambda: rng.random() < 0.5,                  # bool coercion trap
        lambda: f"key-{rng.randrange(1000)}",        # string
    ]
    return [
        (rng.choice(pool)(), i, f"s{i}") for i in range(count)
    ]


def _scalar_route(records, pos, n):
    return [gamma_hash(r[pos], n) for r in records]


@pytest.mark.parametrize("count", [1, NUMPY_THRESHOLD - 1,
                                   NUMPY_THRESHOLD, 257, 1024])
@pytest.mark.parametrize("n", [1, 7, 32, 1000])
def test_hash_route_batch_matches_gamma_hash_ints(count, n):
    rng = random.Random(RNG_SEED + count * 31 + n)
    records = _int_records(rng, count)
    assert hash_route_batch(records, 0, n) == _scalar_route(records, 0, n)


@pytest.mark.parametrize("count", [NUMPY_THRESHOLD, 500])
def test_hash_route_batch_matches_on_fallback_values(count):
    rng = random.Random(RNG_SEED + count)
    records = _mixed_records(rng, count)
    assert hash_route_batch(records, 0, 17) == _scalar_route(records, 0, 17)


def test_partition_batch_matches_scalar_partition():
    rng = random.Random(RNG_SEED)
    schema = _schema()
    strategy = Hashed("unique1")
    for records in (
        _int_records(rng, 4), _int_records(rng, 300),
        _mixed_records(rng, 300), [],
    ):
        scalar = PartitioningStrategy.partition(
            strategy, records, schema, 13
        )
        assert strategy.partition(records, schema, 13) == scalar
        assert partition_batch(records, 0, 13) == scalar


@pytest.mark.skipif(not HAVE_NUMPY, reason="vector path needs numpy")
@pytest.mark.parametrize("n_hashes", [1, 2, 3])
def test_batched_bit_probe_matches_might_contain(n_hashes):
    rng = random.Random(RNG_SEED + n_hashes)
    filt = BitVectorFilter(n_bits=1 << 12, n_hashes=n_hashes)
    members = [rng.randrange(0, 1 << 40) for _ in range(500)]
    for value in members:
        filt.add(value)
    probe = BatchedBitProbe(filt.n_bits, filt._seeds, filt._bits)
    records = [(v,) for v in members[:100]] + [
        ((rng.randrange(0, 1 << 40)),) for _ in range(400)
    ]
    records = [(v[0], 0) for v in records]
    mask = probe.test(records, 0)
    assert mask is not None
    assert mask == [filt.might_contain(r[0]) for r in records]
    # Ineligible batches decline the vector path instead of guessing.
    assert probe.test(records[: NUMPY_THRESHOLD - 1], 0) is None
    assert probe.test([(1.5, 0)] * NUMPY_THRESHOLD, 0) is None


@pytest.mark.skipif(not HAVE_NUMPY, reason="vector path needs numpy")
def test_batched_bit_probe_sees_later_filter_mutations():
    filt = BitVectorFilter(n_bits=1 << 12, n_hashes=2)
    probe = BatchedBitProbe(filt.n_bits, filt._seeds, filt._bits)
    records = [(v, 0) for v in range(NUMPY_THRESHOLD)]
    assert probe.test(records, 0) == [False] * len(records)
    for value, _ in records:
        filt.add(value)
    # The probe aliases the live bit array: adds after construction count.
    assert probe.test(records, 0) == [True] * len(records)

    other = BitVectorFilter(n_bits=1 << 12, n_hashes=2)
    extra = [(v, 0) for v in range(10_000, 10_000 + NUMPY_THRESHOLD)]
    for value, _ in extra:
        other.add(value)
    filt.union(other)
    assert probe.test(extra, 0) == [
        filt.might_contain(v) for v, _ in extra
    ]


def _destinations(n):
    return [Destination(f"n{i}", None) for i in range(n)]


@pytest.mark.parametrize("with_filter", [False, True])
def test_split_table_route_batch_matches_route(with_filter):
    rng = random.Random(RNG_SEED + with_filter)
    schema = _schema()
    costs = GammaConfig.paper_default().costs
    bit_filter = None
    if with_filter:
        bit_filter = BitVectorFilter(n_bits=1 << 12, n_hashes=2)
        for _ in range(200):
            bit_filter.add(rng.randrange(0, 1 << 40))
    table = SplitTable.by_hash(
        _destinations(11), schema, "unique1", costs, bit_filter=bit_filter
    )
    for records in (
        _int_records(rng, 5), _int_records(rng, 400),
        _mixed_records(rng, 400),
    ):
        assert table.route_batch(records) == [
            table.route(r) for r in records
        ]


def test_round_robin_route_batch_matches_route_with_carryover():
    table_a = SplitTable.round_robin(_destinations(7))
    table_b = SplitTable.round_robin(_destinations(7))
    rng = random.Random(RNG_SEED)
    for count in (3, 11, 1, 40):
        records = _int_records(rng, count)
        # Same shared-counter semantics: batches continue where the
        # previous batch left off.
        assert table_a.route_batch(records) == [
            table_b.route(r) for r in records
        ]


def test_single_route_batch_matches_route():
    table = SplitTable.single(_destinations(1)[0])
    records = [(i, i, "x") for i in range(10)]
    assert table.route_batch(records) == [
        table.route(r) for r in records
    ]


@pytest.mark.parametrize("predicate", [
    TruePredicate(),
    RangePredicate("unique2", 100, 5_000),
    ExactMatch("unique1", 4242),
])
def test_compile_batch_matches_compile(predicate):
    rng = random.Random(RNG_SEED)
    schema = _schema()
    records = [
        (rng.randrange(0, 10_000), rng.randrange(0, 10_000), "p")
        for _ in range(300)
    ]
    scalar = predicate.compile(schema)
    batch = predicate.compile_batch(schema)
    assert batch(records) == [r for r in records if scalar(r)]
    assert batch([]) == []


def test_true_predicate_compile_batch_is_identity():
    schema = _schema()
    records = [(1, 2, "x"), (3, 4, "y")]
    assert TruePredicate().compile_batch(schema)(records) == records


@pytest.mark.parametrize("count", [0, 1, NUMPY_THRESHOLD, 200])
def test_column_batch_round_trip(count):
    rng = random.Random(RNG_SEED + count)
    records = _mixed_records(rng, count)
    batch = ColumnBatch.from_records(records)
    assert len(batch) == count
    assert batch.to_records() == records


def test_column_batch_take_and_concat():
    rng = random.Random(RNG_SEED)
    records = _int_records(rng, 100)
    batch = ColumnBatch.from_records(records)
    picked = batch.take([5, 0, 99, 42])
    assert picked.to_records() == [
        records[5], records[0], records[99], records[42]
    ]
    rejoined = ColumnBatch.concat(
        [batch.take(range(0, 60)), ColumnBatch.from_records([]),
         batch.take(range(60, 100))]
    )
    assert rejoined.to_records() == records
