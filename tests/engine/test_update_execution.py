"""End-to-end single-tuple update execution (the Table 3 operation mix)."""

import pytest

from repro.engine import AppendTuple, DeleteTuple, ExactMatch, ModifyTuple, Query
from repro.workloads import generate_tuples


def fresh_tuple(unique1, unique2):
    base = next(iter(generate_tuples(1, seed=123)))
    return (unique1, unique2) + base[2:]


class TestAppend:
    def test_append_heap(self, machine):
        r = machine.update(AppendTuple("heap2k", fresh_tuple(50_000, 50_000)))
        assert r.result_count == 1
        rel = machine.catalog.lookup("heap2k")
        assert rel.num_records == 2001
        assert any(t[0] == 50_000 for t in rel.records())

    def test_append_indexed_costs_more_than_heap(self, machine):
        heap = machine.update(AppendTuple("heap2k", fresh_tuple(60_000, 60_000)))
        indexed = machine.update(AppendTuple("twok", fresh_tuple(60_001, 60_001)))
        assert indexed.response_time > heap.response_time

    def test_append_maintains_indexes(self, machine):
        machine.update(AppendTuple("twok", fresh_tuple(70_000, 70_000)))
        r = machine.run(Query.select("twok", ExactMatch("unique2", 70_000)))
        assert r.result_count == 1

    def test_append_deferred_update_recorded(self, machine):
        r = machine.update(AppendTuple("twok", fresh_tuple(80_000, 80_000)))
        assert r.stats.get("deferred_update_files", 0) == 1


class TestDelete:
    def test_delete_via_clustered_index(self, machine):
        r = machine.update(DeleteTuple("twok", ExactMatch("unique1", 42)))
        assert r.result_count == 1
        check = machine.run(Query.select("twok", ExactMatch("unique1", 42)))
        assert check.result_count == 0

    def test_delete_via_secondary_index(self, machine):
        r = machine.update(DeleteTuple("twok", ExactMatch("unique2", 42)))
        assert r.result_count == 1
        check = machine.run(Query.select("twok", ExactMatch("unique2", 42)))
        assert check.result_count == 0

    def test_delete_missing_affects_nothing(self, machine):
        r = machine.update(DeleteTuple("twok", ExactMatch("unique1", 10**6)))
        assert r.result_count == 0
        assert machine.catalog.lookup("twok").num_records == 2000

    def test_single_site_delete_cheaper_than_broadcast(self, machine):
        by_key = machine.update(DeleteTuple("twok", ExactMatch("unique1", 10)))
        by_other = machine.update(DeleteTuple("twok", ExactMatch("unique2", 10)))
        assert by_key.response_time < by_other.response_time


class TestModify:
    def test_modify_nonindexed_attribute_in_place(self, machine):
        r = machine.update(
            ModifyTuple("twok", ExactMatch("unique1", 100), "odd100", 7)
        )
        assert r.result_count == 1
        got = machine.run(Query.select("twok", ExactMatch("unique1", 100)))
        pos = machine.catalog.lookup("twok").schema.position("odd100")
        assert got.tuples[0][pos] == 7

    def test_modify_key_attribute_relocates(self, machine):
        r = machine.update(
            ModifyTuple("twok", ExactMatch("unique1", 200), "unique1", 90_000)
        )
        assert r.result_count == 1
        gone = machine.run(Query.select("twok", ExactMatch("unique1", 200)))
        assert gone.result_count == 0
        moved = machine.run(Query.select("twok", ExactMatch("unique1", 90_000)))
        assert moved.result_count == 1
        # Cardinality preserved.
        assert machine.catalog.lookup("twok").num_records == 2000

    def test_modify_indexed_attribute_updates_index(self, machine):
        machine.update(
            ModifyTuple("twok", ExactMatch("unique2", 300), "unique2", 95_000)
        )
        via_new = machine.run(Query.select("twok", ExactMatch("unique2", 95_000)))
        assert via_new.result_count == 1
        via_old = machine.run(Query.select("twok", ExactMatch("unique2", 300)))
        assert via_old.result_count == 0

    def test_modify_key_costs_most(self, machine):
        plain = machine.update(
            ModifyTuple("twok", ExactMatch("unique1", 400), "odd100", 9)
        )
        via_index = machine.update(
            ModifyTuple("twok", ExactMatch("unique2", 401), "unique2", 96_000)
        )
        relocate = machine.update(
            ModifyTuple("twok", ExactMatch("unique1", 402), "unique1", 97_000)
        )
        # Table 3 ordering: key modify > indexed modify > plain modify.
        assert relocate.response_time > via_index.response_time
        assert via_index.response_time > plain.response_time

    def test_modify_miss(self, machine):
        r = machine.update(
            ModifyTuple("twok", ExactMatch("unique1", 10**6), "odd100", 1)
        )
        assert r.result_count == 0
