"""Shared fixtures: a small Gamma machine with loaded Wisconsin relations."""

import pytest

from repro import GammaConfig, GammaMachine


def small_config(**overrides):
    defaults = dict(n_disk_sites=4, n_diskless=4)
    defaults.update(overrides)
    return GammaConfig(**defaults)


@pytest.fixture
def machine():
    """A 4+4-node machine with a 2 000-tuple relation in three organisations."""
    m = GammaMachine(small_config())
    m.load_wisconsin(
        "twok", 2_000, seed=11, clustered_on="unique1", secondary_on=["unique2"]
    )
    m.load_wisconsin("heap2k", 2_000, seed=11)
    return m


@pytest.fixture
def join_machine():
    m = GammaMachine(small_config())
    m.load_wisconsin("A", 2_000, seed=21)
    m.load_wisconsin("B", 2_000, seed=22)
    m.load_wisconsin("Bprime", 200, seed=23)
    m.load_wisconsin("C", 200, seed=24)
    return m
