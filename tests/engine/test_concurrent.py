"""Tests for multiuser execution (the paper's stated future work)."""

import pytest

from repro import GammaConfig, GammaMachine, JoinMode, Query, RangePredicate
from repro.engine import ScanNode
from repro.errors import CatalogError


def machine():
    m = GammaMachine(GammaConfig(n_disk_sites=4, n_diskless=4))
    m.load_wisconsin("A", 4_000, seed=1)
    m.load_wisconsin("Bp", 400, seed=2)
    m.load_wisconsin("S", 4_000, seed=3)
    return m


class TestConcurrentExecution:
    def test_answers_match_solo_runs(self):
        m = machine()
        q1 = Query.select("S", RangePredicate("unique2", 0, 39), into="r1")
        q2 = Query.select("A", RangePredicate("unique2", 100, 199), into="r2")
        r1, r2 = m.run_concurrent([q1, q2])
        assert r1.result_count == 40
        assert r2.result_count == 100
        assert m.catalog.lookup("r1").num_records == 40
        assert m.catalog.lookup("r2").num_records == 100

    def test_contention_slows_both_vs_solo(self):
        solo = machine().run(
            Query.select("S", RangePredicate("unique2", 0, 399), into="x")
        )
        m = machine()
        r1, r2 = m.run_concurrent([
            Query.select("S", RangePredicate("unique2", 0, 399), into="c1"),
            Query.select("A", RangePredicate("unique2", 0, 399), into="c2"),
        ])
        assert r1.response_time > solo.response_time
        assert r2.response_time > solo.response_time
        # Interleaved scans even break each other's sequential disk
        # pattern, so concurrency costs more than 2x solo here — but it
        # must stay far from pathological serialisation.
        assert max(r1.response_time, r2.response_time) < 3 * solo.response_time

    def test_remote_join_offloads_disk_sites(self):
        # "offloading the join operators to remote processors will allow
        # the processors with disks to effectively support more concurrent
        # selection and store operators."
        def concurrent_selection_time(mode):
            m = machine()
            _join, sel = m.run_concurrent([
                Query.join(ScanNode("Bp"), ScanNode("A"),
                           on=("unique2", "unique2"), mode=mode, into="j"),
                Query.select("S", RangePredicate("unique2", 0, 399),
                             into="s"),
            ])
            return sel.response_time

        assert (
            concurrent_selection_time(JoinMode.REMOTE)
            < concurrent_selection_time(JoinMode.LOCAL)
        )

    def test_duplicate_result_names_rejected(self):
        m = machine()
        q = Query.select("S", RangePredicate("unique2", 0, 9), into="dup")
        with pytest.raises(CatalogError):
            m.run_concurrent([q, q])

    def test_existing_result_name_rejected(self):
        m = machine()
        m.run(Query.select("S", RangePredicate("unique2", 0, 9), into="taken"))
        with pytest.raises(CatalogError):
            m.run_concurrent([
                Query.select("S", RangePredicate("unique2", 0, 9),
                             into="taken")
            ])

    def test_mixed_host_and_stored_results(self):
        m = machine()
        to_host = Query.select("S", RangePredicate("unique2", 0, 9))
        stored = Query.select("A", RangePredicate("unique2", 0, 9), into="st")
        r1, r2 = m.run_concurrent([to_host, stored])
        assert len(r1.tuples) == 10
        assert r2.result_relation == "st"

    def test_single_query_matches_run(self):
        m1 = machine()
        solo = m1.run(Query.select("S", RangePredicate("unique2", 0, 99),
                                   into="a"))
        m2 = machine()
        (conc,) = m2.run_concurrent([
            Query.select("S", RangePredicate("unique2", 0, 99), into="a")
        ])
        assert conc.response_time == pytest.approx(solo.response_time,
                                                   rel=0.01)

    def test_results_carry_the_same_fields_as_run(self):
        # run() and run_concurrent() share one result builder: every
        # result must expose the full stats/metrics surface, not just a
        # response time.
        from repro.workloads.queries import update_suite

        m = machine()
        solo = m.run(Query.select("S", RangePredicate("unique2", 0, 9)))
        m2 = machine()
        update = update_suite("A", 4_000)["modify 1 tuple (key attribute)"]
        results = m2.run_concurrent([
            Query.select("S", RangePredicate("unique2", 0, 9)),
            Query.join(ScanNode("Bp"), ScanNode("A"),
                       on=("unique2", "unique2"), into="jm"),
            update,
        ])
        for r in results:
            assert r.stats["sim_events"] > 0
            assert r.node_metrics is not None
            assert r.operator_metrics is not None
            assert r.utilisation_report is not None
            assert r.utilisations
            assert r.plan
        sel, join, upd = results
        # Stats are machine-wide (the batch also ran an update), so the
        # solo query's counters must all be present.
        assert solo.stats.keys() <= sel.stats.keys()
        assert join.overflows_per_node is not None
        assert upd.result_count == 1
        assert upd.plan == "ModifyTuple"
