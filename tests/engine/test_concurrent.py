"""Tests for multiuser execution (the paper's stated future work)."""

import pytest

from repro import GammaConfig, GammaMachine, JoinMode, Query, RangePredicate
from repro.engine import ScanNode
from repro.engine.locks import DeadlockError, LockMode
from repro.errors import CatalogError
from repro.sim import Delay


def machine():
    m = GammaMachine(GammaConfig(n_disk_sites=4, n_diskless=4))
    m.load_wisconsin("A", 4_000, seed=1)
    m.load_wisconsin("Bp", 400, seed=2)
    m.load_wisconsin("S", 4_000, seed=3)
    return m


class TestConcurrentExecution:
    def test_answers_match_solo_runs(self):
        m = machine()
        q1 = Query.select("S", RangePredicate("unique2", 0, 39), into="r1")
        q2 = Query.select("A", RangePredicate("unique2", 100, 199), into="r2")
        r1, r2 = m.run_concurrent([q1, q2])
        assert r1.result_count == 40
        assert r2.result_count == 100
        assert m.catalog.lookup("r1").num_records == 40
        assert m.catalog.lookup("r2").num_records == 100

    def test_contention_slows_both_vs_solo(self):
        solo = machine().run(
            Query.select("S", RangePredicate("unique2", 0, 399), into="x")
        )
        m = machine()
        r1, r2 = m.run_concurrent([
            Query.select("S", RangePredicate("unique2", 0, 399), into="c1"),
            Query.select("A", RangePredicate("unique2", 0, 399), into="c2"),
        ])
        assert r1.response_time > solo.response_time
        assert r2.response_time > solo.response_time
        # Interleaved scans even break each other's sequential disk
        # pattern, so concurrency costs more than 2x solo here — but it
        # must stay far from pathological serialisation.
        assert max(r1.response_time, r2.response_time) < 3 * solo.response_time

    def test_remote_join_offloads_disk_sites(self):
        # "offloading the join operators to remote processors will allow
        # the processors with disks to effectively support more concurrent
        # selection and store operators."
        def concurrent_selection_time(mode):
            m = machine()
            _join, sel = m.run_concurrent([
                Query.join(ScanNode("Bp"), ScanNode("A"),
                           on=("unique2", "unique2"), mode=mode, into="j"),
                Query.select("S", RangePredicate("unique2", 0, 399),
                             into="s"),
            ])
            return sel.response_time

        assert (
            concurrent_selection_time(JoinMode.REMOTE)
            < concurrent_selection_time(JoinMode.LOCAL)
        )

    def test_duplicate_result_names_rejected(self):
        m = machine()
        q = Query.select("S", RangePredicate("unique2", 0, 9), into="dup")
        with pytest.raises(CatalogError):
            m.run_concurrent([q, q])

    def test_existing_result_name_rejected(self):
        m = machine()
        m.run(Query.select("S", RangePredicate("unique2", 0, 9), into="taken"))
        with pytest.raises(CatalogError):
            m.run_concurrent([
                Query.select("S", RangePredicate("unique2", 0, 9),
                             into="taken")
            ])

    def test_mixed_host_and_stored_results(self):
        m = machine()
        to_host = Query.select("S", RangePredicate("unique2", 0, 9))
        stored = Query.select("A", RangePredicate("unique2", 0, 9), into="st")
        r1, r2 = m.run_concurrent([to_host, stored])
        assert len(r1.tuples) == 10
        assert r2.result_relation == "st"

    def test_single_query_matches_run(self):
        m1 = machine()
        solo = m1.run(Query.select("S", RangePredicate("unique2", 0, 99),
                                   into="a"))
        m2 = machine()
        (conc,) = m2.run_concurrent([
            Query.select("S", RangePredicate("unique2", 0, 99), into="a")
        ])
        assert conc.response_time == pytest.approx(solo.response_time,
                                                   rel=0.01)

    def test_failed_request_carries_error_not_run_end(self, monkeypatch):
        # Regression: a per-request failure used to escape sim.run() and
        # kill the whole batch; and a wedged request's "response time"
        # was silently reported as the run end.  Force a deadlock with
        # opposite lock orders: the victim's result must carry the error
        # and its abort timestamp, while the survivor completes.
        from repro.engine.driver import UpdateDriver
        from repro.engine.plan import ExactMatch, ModifyTuple

        def conflicting(self):
            relation = self.update.relation
            sites = sorted(set(self.update.lock_sites))
            if self.txn % 2 == 0:
                sites = list(reversed(sites))
            for site in sites:
                yield from self.ctx.locks.acquire(
                    self.txn, (relation.name, site), LockMode.EXCLUSIVE,
                    timeout=self.ctx.lock_timeout,
                )
                yield Delay(0.05)

        monkeypatch.setattr(
            UpdateDriver, "_acquire_write_locks", conflicting
        )
        m = machine()
        # Key-attribute modifies lock every fragment of A.
        survivor, victim = m.run_concurrent([
            ModifyTuple("A", ExactMatch("unique1", 10), "unique1", 95_000),
            ModifyTuple("A", ExactMatch("unique1", 20), "unique1", 96_000),
        ])
        assert survivor.ok and survivor.error is None
        assert survivor.result_count == 1
        assert not victim.ok
        assert isinstance(victim.error, DeadlockError)
        assert victim.result_count == 0
        # The victim aborted before the survivor finished — its response
        # time is the abort point, not the end of the run.
        assert victim.response_time < survivor.response_time
        # The victim's modify never touched the data.
        check = m.run(Query.select("A", ExactMatch("unique1", 20)))
        assert check.result_count == 1

    def test_failed_into_query_not_registered(self, monkeypatch):
        # An aborted `retrieve into` must not leave a half-written
        # result relation in the catalog.
        from repro.engine.driver import QueryDriver, UpdateDriver
        from repro.engine.plan import ExactMatch, ModifyTuple

        def update_locks(self):
            relation = self.update.relation
            for site in sorted(set(self.update.lock_sites)):
                yield from self.ctx.locks.acquire(
                    self.txn, (relation.name, site), LockMode.EXCLUSIVE,
                )
                yield Delay(0.05)

        def query_locks(self):
            for site in reversed(range(4)):
                yield from self.ctx.locks.acquire(
                    self.txn, ("A", site), LockMode.SHARED,
                )
                yield Delay(0.05)

        monkeypatch.setattr(
            UpdateDriver, "_acquire_write_locks", update_locks
        )
        monkeypatch.setattr(
            QueryDriver, "_acquire_read_locks", query_locks
        )
        m = machine()
        upd, sel = m.run_concurrent([
            ModifyTuple("A", ExactMatch("unique1", 10), "unique1", 95_000),
            Query.select("A", RangePredicate("unique2", 0, 9),
                         into="doomed"),
        ])
        assert upd.ok and upd.result_count == 1
        assert isinstance(sel.error, DeadlockError)
        assert sel.result_relation is None
        assert "doomed" not in m.catalog

    def test_read_after_create_dependency_rejected(self):
        # Regression: a query scanning a relation another request in the
        # same batch creates (via into=) used to fail deep inside the
        # planner with "unknown relation"; the dependency must be
        # diagnosed up front.
        m = machine()
        with pytest.raises(CatalogError, match="same batch creates"):
            m.run_concurrent([
                Query.select("S", RangePredicate("unique2", 0, 9),
                             into="tmp_sel"),
                Query.select("tmp_sel"),
            ])
        # Nothing was registered by the rejected batch.
        assert "tmp_sel" not in m.catalog

    def test_read_after_create_seen_through_join_inputs(self):
        m = machine()
        with pytest.raises(CatalogError, match="same batch creates"):
            m.run_concurrent([
                Query.select("S", RangePredicate("unique2", 0, 9),
                             into="tmp_join_in"),
                Query.join(ScanNode("tmp_join_in"), ScanNode("A"),
                           on=("unique2", "unique2")),
            ])

    def test_trace_and_profile_parity_with_run(self):
        # Regression: run_concurrent() lacked the trace=/profile=
        # observability parameters run() has.  Both must attach, stay
        # timeline-neutral, and each result's profile must cover only
        # that request's own operators.
        from repro.metrics import TraceBuffer

        def requests():
            return [
                Query.select("S", RangePredicate("unique2", 0, 99)),
                Query.join(ScanNode("Bp"), ScanNode("A"),
                           on=("unique2", "unique2")),
            ]

        base = machine().run_concurrent(requests())
        trace = TraceBuffer()
        observed = machine().run_concurrent(
            requests(), trace=trace, profile=True
        )
        for solo, prof in zip(base, observed):
            assert prof.profile is not None
            # Observability is passive: identical simulated timeline.
            assert prof.response_time == solo.response_time
        assert len(trace) > 0
        ops = [set(r.profile.spans) for r in observed]
        assert ops[0] and all(op.startswith("q0.") for op in ops[0])
        assert ops[1] and all(op.startswith("q1.") for op in ops[1])
        assert not ops[0] & ops[1]
        # Each per-request profile carries real attributed busy time.
        for r in observed:
            assert sum(
                s.total_busy for s in r.profile.spans.values()
            ) > 0.0

    def test_results_carry_the_same_fields_as_run(self):
        # run() and run_concurrent() share one result builder: every
        # result must expose the full stats/metrics surface, not just a
        # response time.
        from repro.workloads.queries import update_suite

        m = machine()
        solo = m.run(Query.select("S", RangePredicate("unique2", 0, 9)))
        m2 = machine()
        update = update_suite("A", 4_000)["modify 1 tuple (key attribute)"]
        results = m2.run_concurrent([
            Query.select("S", RangePredicate("unique2", 0, 9)),
            Query.join(ScanNode("Bp"), ScanNode("A"),
                       on=("unique2", "unique2"), into="jm"),
            update,
        ])
        for r in results:
            assert r.stats["sim_events"] > 0
            assert r.node_metrics is not None
            assert r.operator_metrics is not None
            assert r.utilisation_report is not None
            assert r.utilisations
            assert r.plan
        sel, join, upd = results
        # Stats are machine-wide (the batch also ran an update), so the
        # solo query's counters must all be present.
        assert solo.stats.keys() <= sel.stats.keys()
        assert join.overflows_per_node is not None
        assert upd.result_count == 1
        assert upd.plan == "ModifyTuple"
