"""Tests for the admission controller (MPL, queueing policy, timeout)."""

import pytest

from repro.engine.admission import (
    AdmissionController,
    AdmissionError,
    AdmissionTimeout,
)
from repro.sim import Delay, Simulation


def drive(mpl=2, policy="fifo", timeout=None, procs=()):
    """Run processes against one controller; returns the controller."""
    sim = Simulation()
    controller = AdmissionController(
        sim, mpl=mpl, policy=policy, timeout=timeout
    )
    for i, proc in enumerate(procs):
        sim.spawn(proc(sim, controller), name=f"client{i}")
    sim.run()
    return controller


def worker(token, start, service, priority=0, log=None, outcomes=None):
    """A client: arrive at ``start``, hold a slot for ``service``."""

    def proc(sim, controller):
        yield Delay(start)
        try:
            yield from controller.admit(token, priority=priority)
        except AdmissionTimeout:
            if outcomes is not None:
                outcomes.append((token, "timeout", sim.now))
            return
        if log is not None:
            log.append((token, sim.now))
        yield Delay(service)
        controller.release(token)
        if outcomes is not None:
            outcomes.append((token, "done", sim.now))

    return proc


class TestAdmissionController:
    def test_mpl_bounds_concurrency(self):
        log = []
        controller = drive(mpl=2, procs=[
            worker("a", 0.0, 1.0, log=log),
            worker("b", 0.0, 1.0, log=log),
            worker("c", 0.0, 1.0, log=log),
        ])
        # a and b start immediately; c waits for a slot.
        assert [t for t, _ in log] == ["a", "b", "c"]
        assert log[0][1] == 0.0 and log[1][1] == 0.0
        assert log[2][1] == pytest.approx(1.0)
        assert controller.peak_running == 2
        assert controller.peak_queue == 1
        assert controller.admitted == 3

    def test_fifo_ignores_priority(self):
        log = []
        drive(mpl=1, policy="fifo", procs=[
            worker("slow", 0.0, 1.0, log=log),
            worker("low", 0.1, 0.1, priority=5, log=log),
            worker("high", 0.2, 0.1, priority=0, log=log),
        ])
        assert [t for t, _ in log] == ["slow", "low", "high"]

    def test_priority_reorders_queue(self):
        log = []
        drive(mpl=1, policy="priority", procs=[
            worker("slow", 0.0, 1.0, log=log),
            worker("low", 0.1, 0.1, priority=5, log=log),
            worker("high", 0.2, 0.1, priority=0, log=log),
        ])
        # Both queue behind "slow"; the priority-0 entry is served first.
        assert [t for t, _ in log] == ["slow", "high", "low"]

    def test_fifo_within_priority_class(self):
        log = []
        drive(mpl=1, policy="priority", procs=[
            worker("slow", 0.0, 1.0, log=log),
            worker("first", 0.1, 0.1, priority=1, log=log),
            worker("second", 0.2, 0.1, priority=1, log=log),
        ])
        assert [t for t, _ in log] == ["slow", "first", "second"]

    def test_timeout_withdraws_queued_entry(self):
        outcomes = []
        controller = drive(mpl=1, timeout=0.5, procs=[
            worker("holder", 0.0, 2.0, outcomes=outcomes),
            worker("victim", 0.1, 0.1, outcomes=outcomes),
            worker("later", 1.9, 0.1, outcomes=outcomes),
        ])
        by_token = {t: kind for t, kind, _ in outcomes}
        assert by_token == {
            "holder": "done", "victim": "timeout", "later": "done"
        }
        # The victim left the queue cleanly: nothing queued at the end,
        # no slot leaked, and the timeout is counted.
        assert controller.timeouts == 1
        assert controller.queue_length == 0
        assert controller.running == 0
        # The victim timed out at exactly arrival + timeout.
        victim_time = next(t for tok, _k, t in outcomes if tok == "victim")
        assert victim_time == pytest.approx(0.6)

    def test_slot_freed_by_timeout_goes_to_next_waiter(self):
        # holder keeps the slot; v1 times out while queued ahead of v2;
        # v2 must then be granted when the holder releases.
        log = []
        outcomes = []
        drive(mpl=1, timeout=0.5, procs=[
            worker("holder", 0.0, 0.7, log=log, outcomes=outcomes),
            worker("v1", 0.1, 0.1, log=log, outcomes=outcomes),
            worker("v2", 0.3, 0.1, log=log, outcomes=outcomes),
        ])
        assert ("v1", "timeout", pytest.approx(0.6)) in [
            (t, k, v) for t, k, v in outcomes
        ]
        assert [t for t, _ in log] == ["holder", "v2"]

    def test_double_admit_rejected(self):
        sim = Simulation()
        controller = AdmissionController(sim, mpl=2)

        def proc():
            yield from controller.admit("t")
            with pytest.raises(AdmissionError):
                yield from controller.admit("t")
            controller.release("t")

        sim.spawn(proc(), name="p")
        sim.run()

    def test_release_unadmitted_rejected(self):
        sim = Simulation()
        controller = AdmissionController(sim, mpl=2)
        with pytest.raises(AdmissionError):
            controller.release("ghost")

    def test_invalid_configuration_rejected(self):
        sim = Simulation()
        with pytest.raises(AdmissionError):
            AdmissionController(sim, mpl=0)
        with pytest.raises(AdmissionError):
            AdmissionController(sim, policy="lifo")
        with pytest.raises(AdmissionError):
            AdmissionController(sim, timeout=0.0)

    def test_summary_dict(self):
        controller = drive(mpl=1, procs=[
            worker("a", 0.0, 1.0),
            worker("b", 0.0, 1.0),
        ])
        summary = controller.as_dict()
        assert summary["mpl"] == 1
        assert summary["admitted"] == 2
        assert summary["peak_queue"] == 1
        assert summary["queue_wait"]["count"] == 2
        assert summary["queue_wait"]["max"] == pytest.approx(1.0)
