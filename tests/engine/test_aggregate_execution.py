"""End-to-end aggregate execution against plain-Python oracles."""

import pytest

from repro.engine import Query, RangePredicate
from repro.workloads import generate_tuples


def data(n=2000, seed=11):
    return list(generate_tuples(n, seed=seed))


class TestScalarAggregates:
    def test_count(self, machine):
        r = machine.run(Query.aggregate("twok", op="count"))
        assert r.tuples == [(2000,)]

    def test_min(self, machine):
        r = machine.run(Query.aggregate("twok", op="min", attr="unique2"))
        assert r.tuples == [(0,)]

    def test_max(self, machine):
        r = machine.run(Query.aggregate("twok", op="max", attr="unique2"))
        assert r.tuples == [(1999,)]

    def test_sum(self, machine):
        r = machine.run(Query.aggregate("twok", op="sum", attr="unique1"))
        assert r.tuples == [(sum(range(2000)),)]

    def test_avg(self, machine):
        r = machine.run(Query.aggregate("twok", op="avg", attr="unique1"))
        assert r.tuples[0][0] == pytest.approx(999.5)

    def test_aggregate_with_selection(self, machine):
        r = machine.run(
            Query.aggregate("twok", op="count",
                            where=RangePredicate("unique2", 0, 199))
        )
        assert r.tuples == [(200,)]


class TestGroupedAggregates:
    def test_count_by_ten(self, machine):
        r = machine.run(Query.aggregate("twok", op="count", group_by="ten"))
        assert sorted(r.tuples) == [(g, 200) for g in range(10)]

    def test_min_by_two(self, machine):
        r = machine.run(
            Query.aggregate("twok", op="min", attr="unique1", group_by="two")
        )
        assert sorted(r.tuples) == [(0, 0), (1, 1)]

    def test_sum_by_hundred_matches_oracle(self, machine):
        oracle = {}
        for t in data():
            oracle[t[6]] = oracle.get(t[6], 0) + t[0]
        r = machine.run(
            Query.aggregate("twok", op="sum", attr="unique1", group_by="hundred")
        )
        assert dict(r.tuples) == oracle

    def test_grouped_result_stored(self, machine):
        r = machine.run(
            Query.aggregate("twok", op="count", group_by="twenty", into="agg_out")
        )
        rel = machine.catalog.lookup("agg_out")
        assert rel.num_records == 20
        assert r.result_count == 20

    def test_group_by_with_selection(self, machine):
        r = machine.run(
            Query.aggregate(
                "twok", op="count", group_by="two",
                where=RangePredicate("unique1", 0, 99),
            )
        )
        assert sorted(r.tuples) == [(0, 50), (1, 50)]

    def test_more_tuples_cost_more(self, machine):
        small = machine.run(
            Query.aggregate("twok", op="count",
                            where=RangePredicate("unique1", 0, 19))
        )
        big = machine.run(Query.aggregate("twok", op="count"))
        assert big.response_time > small.response_time
