"""Skew-aware Exchange strategies: planner statistics, plan shapes, and
cross-strategy result equality on the Gamma driver."""

import pytest

from repro import GammaConfig, GammaMachine
from repro.engine.ir import ExchangeKind
from repro.engine.planner import Planner
from repro.engine.skew import (
    SKEW_STRATEGIES,
    histogram_boundaries,
    hot_keys,
    virtual_map,
)
from repro.errors import PlanError
from repro.workloads import (
    generate_hot_key_tuples,
    generate_tuples,
    wisconsin_schema,
)
from repro.workloads.queries import join_abprime


def _config(**overrides):
    defaults = dict(n_disk_sites=4, n_diskless=4)
    defaults.update(overrides)
    return GammaConfig(**defaults)


def _skewed_machine(strategy="hash", hot_fraction=0.6, n=2_000):
    machine = GammaMachine(_config(), skew_strategy=strategy)
    machine.load_relation(
        "probe", wisconsin_schema(),
        list(generate_hot_key_tuples(
            n, seed=5, hot_fraction=hot_fraction, domain=n // 10,
        )),
    )
    machine.load_relation(
        "build", wisconsin_schema(),
        list(generate_tuples(n // 10, seed=6)),
    )
    return machine


def _join_plan(machine):
    query = join_abprime("probe", "build", key=False, into="out")
    planner = Planner(
        machine.config, machine.catalog,
        skew_strategy=machine.skew_strategy,
    )
    return planner.plan(query)


def _probe_join(ir):
    node = ir.root
    while not hasattr(node, "build_input"):
        node = node.source
    return node


class TestStatisticsHelpers:
    def test_histogram_boundaries_equal_depth(self):
        sample = list(range(100))
        cuts = histogram_boundaries(sample, 4)
        assert cuts == [24, 49, 74]

    def test_histogram_boundaries_refuse_single_value(self):
        assert histogram_boundaries([7] * 100, 4) is None

    def test_histogram_boundaries_refuse_tiny_sample(self):
        assert histogram_boundaries([1, 2], 4) is None

    def test_virtual_map_shape_and_determinism(self):
        sample = [v % 17 for v in range(500)]
        vmap = virtual_map(sample, 4)
        assert len(vmap) == 4 * 8
        assert set(vmap) <= set(range(4))
        assert vmap == virtual_map(sample, 4)

    def test_virtual_map_balances_sampled_load(self):
        from collections import Counter

        from repro.catalog import gamma_hash

        sample = [v % 13 for v in range(1000)]
        vmap = virtual_map(sample, 4)
        per_fragment = Counter(vmap[gamma_hash(v, len(vmap))]
                               for v in sample)
        assert max(per_fragment.values()) <= 1.5 * min(
            per_fragment.values()
        )

    def test_hot_keys_threshold(self):
        sample = [0] * 60 + list(range(1, 41))
        hot = hot_keys(sample, 4, share=0.5)
        # 0 holds 60% of the sample >> 12.5% threshold; the tail keys
        # hold 1% each.
        assert hot == frozenset({0})

    def test_hot_keys_empty_on_uniform(self):
        assert hot_keys(list(range(1000)), 4) == frozenset()


class TestPlannerStrategies:
    def test_unknown_strategy_rejected(self):
        machine = _skewed_machine()
        with pytest.raises(PlanError, match="unknown skew_strategy"):
            Planner(machine.config, machine.catalog,
                    skew_strategy="zipfian")

    def test_machine_knob_reaches_planner(self):
        machine = _skewed_machine("vhash")
        assert machine._planner().skew_strategy == "vhash"

    def test_default_plan_uses_plain_hash(self):
        join = _probe_join(_join_plan(_skewed_machine("hash")))
        assert join.exchange.kind is ExchangeKind.HASH
        assert join.build_input.exchange.kind is ExchangeKind.HASH

    def test_range_plan_carries_boundaries(self):
        join = _probe_join(_join_plan(_skewed_machine("range")))
        assert join.exchange.kind is ExchangeKind.RANGE
        assert join.build_input.exchange.kind is ExchangeKind.RANGE
        assert join.exchange.boundaries
        assert join.exchange.boundaries == sorted(
            join.exchange.boundaries
        )

    def test_vhash_plan_overpartitions(self):
        machine = _skewed_machine("vhash")
        join = _probe_join(_join_plan(machine))
        assert join.exchange.kind is ExchangeKind.VHASH
        n_frag = (machine.config.n_diskless
                  or machine.config.n_disk_sites)
        assert len(join.exchange.virtual_map) == 8 * n_frag
        assert join.exchange.virtual_map == (
            join.build_input.exchange.virtual_map
        )

    def test_hot_broadcast_plan_detects_the_hot_key(self):
        join = _probe_join(_join_plan(_skewed_machine("hot-broadcast")))
        assert join.build_input.exchange.kind is (
            ExchangeKind.HOT_BROADCAST
        )
        assert join.exchange.kind is ExchangeKind.HOT_SPRAY
        assert 0 in join.exchange.hot_keys

    def test_hot_broadcast_falls_back_on_uniform_data(self):
        machine = GammaMachine(_config(), skew_strategy="hot-broadcast")
        machine.load_relation(
            "probe", wisconsin_schema(),
            list(generate_tuples(2_000, seed=5)),
        )
        machine.load_relation(
            "build", wisconsin_schema(),
            list(generate_tuples(200, seed=6)),
        )
        join = _probe_join(_join_plan(machine))
        assert join.exchange.kind is ExchangeKind.HASH

    def test_describe_names_the_new_kinds(self):
        for strategy, fragment in (
            ("range", "range("),
            ("vhash", "vhash("),
            ("hot-broadcast", "hot-"),
        ):
            ir = _join_plan(_skewed_machine(strategy))
            assert fragment in ir.root.describe() or fragment in (
                _probe_join(ir).exchange.describe()
            )


class TestCrossStrategyExecution:
    def test_all_strategies_agree_on_the_join_answer(self):
        counts = {}
        times = {}
        for strategy in SKEW_STRATEGIES:
            machine = _skewed_machine(strategy)
            result = machine.run(
                join_abprime("probe", "build", key=False, into="out")
            )
            counts[strategy] = result.result_count
            times[strategy] = result.response_time
        assert len(set(counts.values())) == 1, counts
        # Redistribution changes timing, never answers: with a 60%-hot
        # key, fragment-replicate must beat the plain hash split.
        assert times["hot-broadcast"] < times["hash"]

    def test_one_site_machine_runs_every_strategy(self):
        for strategy in SKEW_STRATEGIES:
            machine = GammaMachine(
                GammaConfig(n_disk_sites=1, n_diskless=0),
                skew_strategy=strategy,
            )
            machine.load_relation(
                "probe", wisconsin_schema(),
                list(generate_hot_key_tuples(500, seed=5,
                                             hot_fraction=0.6)),
            )
            machine.load_relation(
                "build", wisconsin_schema(),
                list(generate_tuples(50, seed=6)),
            )
            result = machine.run(
                join_abprime("probe", "build", key=False, into="out")
            )
            assert result.result_count > 0
