"""Unit tests for ports, packets, spool files and node I/O plumbing."""

import pytest

from repro.engine.node import ExecutionContext
from repro.engine.operators.base import SpoolFile
from repro.engine.ports import DataPacket, EndOfStream, InputPort, OutputPort
from repro.engine.split_table import Destination, SplitTable
from repro.errors import ExecutionError
from repro.hardware import GammaConfig
from repro.sim import Put
from repro.storage import Schema, int_attr


def make_ctx(**overrides):
    defaults = dict(n_disk_sites=2, n_diskless=2)
    defaults.update(overrides)
    return ExecutionContext(GammaConfig(**defaults))


def run_procs(ctx, *gens):
    procs = [ctx.sim.spawn(g, name=f"p{i}") for i, g in enumerate(gens)]
    ctx.sim.run()
    return procs


class TestInputPort:
    def test_drain_collects_until_all_eos(self):
        ctx = make_ctx()
        node = ctx.disk_nodes[0]
        port = InputPort(ctx, "in", node)
        port.add_producer(2)
        got = []

        def consumer():
            records = yield from port.drain()
            got.extend(records)

        def producer(tag):
            yield Put(port.store, DataPacket([(tag, 1)], 208, tag, node.name))
            yield Put(port.store, EndOfStream(tag))

        run_procs(ctx, consumer(), producer("a"), producer("b"))
        assert sorted(got) == [("a", 1), ("b", 1)]

    def test_short_circuit_receive_is_cheaper(self):
        config = GammaConfig(n_disk_sites=2, n_diskless=0)
        costs = config.costs
        assert costs.packet_short_circuit < costs.packet_receive

        def measure(src_name):
            ctx = ExecutionContext(config)
            node = ctx.disk_nodes[0]
            port = InputPort(ctx, "in", node)
            port.add_producer(1)

            def consumer():
                yield from port.drain()

            def producer():
                yield Put(port.store, DataPacket([(1,)], 208, "x", src_name))
                yield Put(port.store, EndOfStream("x"))

            run_procs(ctx, consumer(), producer())
            return node.instructions_retired

        local = measure("disk0")
        remote = measure("disk1")
        assert local < remote

    def test_consumer_blocks_until_producers_registered(self):
        # The port must not finish before registration even with 0
        # producers known at start.
        ctx = make_ctx()
        node = ctx.disk_nodes[0]
        port = InputPort(ctx, "in", node)
        got = []

        def consumer():
            records = yield from port.drain()
            got.append(len(records))

        def late_registrar():
            port.add_producer()
            yield Put(port.store, DataPacket([(1,)], 208, "x", node.name))
            yield Put(port.store, EndOfStream("x"))

        run_procs(ctx, consumer(), late_registrar())
        assert got == [1]


class TestOutputPort:
    def _make_port(self, ctx, node, dests, schema):
        split = SplitTable.round_robin(dests)
        for d in dests:
            d.port.add_producer()
        return OutputPort(ctx, node, split, schema.tuple_bytes, "out")

    def test_packets_respect_packet_size(self):
        ctx = make_ctx()
        schema = Schema([int_attr("a")] * 1)
        node = ctx.disk_nodes[0]
        dest_node = ctx.disk_nodes[1]
        port_in = InputPort(ctx, "in", dest_node)
        dests = [Destination(dest_node.name, port_in)]
        out = self._make_port(ctx, node, dests, schema)
        records = [(i,) for i in range(1000)]

        def producer():
            yield from out.emit_many(records)
            yield from out.close()

        def consumer():
            while True:
                pkt = yield from port_in.next_packet()
                if pkt is None:
                    return
                assert pkt.nbytes <= ctx.config.packet_size

        run_procs(ctx, producer(), consumer())
        # per-tuple bytes 4 -> 512 tuples/packet -> 2 packets minimum
        assert ctx.stats["packets_sent"] >= 2

    def test_emit_after_close_raises(self):
        ctx = make_ctx()
        schema = Schema([int_attr("a")])
        node = ctx.disk_nodes[0]
        port_in = InputPort(ctx, "in", node)
        out = self._make_port(
            ctx, node, [Destination(node.name, port_in)], schema
        )

        def producer():
            yield from out.close()
            with pytest.raises(ExecutionError):
                yield from out.emit_many([(1,)])

        def consumer():
            yield from port_in.drain()

        run_procs(ctx, producer(), consumer())

    def test_bit_filter_drops_counted(self):
        from repro.engine import BitVectorFilter
        from repro.hardware import GammaCosts

        ctx = make_ctx()
        schema = Schema([int_attr("a")])
        node = ctx.disk_nodes[0]
        port_in = InputPort(ctx, "in", ctx.disk_nodes[1])
        bf = BitVectorFilter()
        bf.add(1)
        split = SplitTable.by_hash(
            [Destination(ctx.disk_nodes[1].name, port_in)],
            schema, "a", GammaCosts(), bit_filter=bf,
        )
        port_in.add_producer()
        out = OutputPort(ctx, node, split, schema.tuple_bytes, "out")

        def producer():
            yield from out.emit_many([(1,), (99_999,), (88_888,)])
            yield from out.close()

        def consumer():
            return (yield from port_in.drain())

        _prod, cons = run_procs(ctx, producer(), consumer())
        assert out.tuples_filtered >= 1
        assert (1,) in cons.value


class TestSpoolFile:
    def test_page_accounting(self):
        ctx = make_ctx()
        node = ctx.disk_nodes[0]
        spool = SpoolFile(ctx, node, "t", record_bytes=208)

        def proc():
            yield from spool.add_batch([(i,) for i in range(100)])
            yield from spool.flush()

        run_procs(ctx, proc())
        assert len(spool) == 100
        # 17 records per 4KB page -> 6 pages
        assert spool.num_pages == 6
        pages = list(spool.read_pages())
        assert sum(len(records) for _no, records in pages) == 100

    def test_diskless_owner_spools_to_disk_site_over_network(self):
        ctx = make_ctx()
        diskless = ctx.diskless_nodes[0]
        spool = SpoolFile(ctx, diskless, "t", record_bytes=208)
        assert spool.target.has_disk

        def proc():
            yield from spool.add_batch([(i,) for i in range(40)])
            yield from spool.flush()
            yield from spool.read_page_io(0)

        before = ctx.net.messages_sent
        run_procs(ctx, proc())
        assert ctx.net.messages_sent > before  # pages crossed the network

    def test_disk_owner_spools_locally(self):
        ctx = make_ctx()
        node = ctx.disk_nodes[0]
        spool = SpoolFile(ctx, node, "t", record_bytes=208)
        assert spool.target is node

    def test_page_io_attributed_to_owner_node_metrics(self):
        ctx = make_ctx()
        node = ctx.disk_nodes[0]
        spool = SpoolFile(ctx, node, "t", record_bytes=208)

        def proc():
            yield from spool.add_batch([(i,) for i in range(100)])
            yield from spool.flush()
            for page_no in range(spool.num_pages):
                yield from spool.read_page_io(page_no)

        run_procs(ctx, proc())
        nm = ctx.metrics.node(node.name)
        assert nm.spool_pages_written == spool.num_pages == 6
        assert nm.spool_pages_read == 6
        assert ctx.stats["spool_pages_written"] == 6
        assert ctx.stats["spool_pages_read"] == 6


class TestNodeIO:
    def test_buffer_hit_skips_disk(self):
        ctx = make_ctx()
        node = ctx.disk_nodes[0]

        def proc():
            hit1 = yield from node.read_page("f", 0)
            hit2 = yield from node.read_page("f", 0)
            assert hit1 is False and hit2 is True

        run_procs(ctx, proc())
        assert node.drive.pages_read == 1

    def test_uncached_read_always_hits_disk(self):
        ctx = make_ctx()
        node = ctx.disk_nodes[0]

        def proc():
            yield from node.read_page_uncached("f", 0)
            yield from node.read_page_uncached("f", 0)

        run_procs(ctx, proc())
        assert node.drive.pages_read == 2

    def test_write_page_populates_buffer(self):
        ctx = make_ctx()
        node = ctx.disk_nodes[0]

        def proc():
            yield from node.write_page("f", 3)
            hit = yield from node.read_page("f", 3)
            assert hit is True

        run_procs(ctx, proc())


class TestExecutionContext:
    def test_join_nodes_by_mode(self):
        from repro.engine import JoinMode

        ctx = make_ctx()
        assert all(n.has_disk for n in ctx.join_nodes(JoinMode.LOCAL))
        assert not any(n.has_disk for n in ctx.join_nodes(JoinMode.REMOTE))
        assert len(ctx.join_nodes(JoinMode.ALLNODES)) == 4

    def test_remote_falls_back_without_diskless(self):
        from repro.engine import JoinMode

        ctx = make_ctx(n_diskless=0)
        assert all(n.has_disk for n in ctx.join_nodes(JoinMode.REMOTE))

    def test_spool_targets_cycle_over_disk_sites(self):
        ctx = make_ctx()
        diskless = ctx.diskless_nodes[0]
        targets = {ctx.spool_target(diskless).name for _ in range(4)}
        assert targets == {"disk0", "disk1"}

    def test_temp_file_ids_unique(self):
        ctx = make_ctx()
        ids = {ctx.temp_file_id("x") for _ in range(100)}
        assert len(ids) == 100
