"""Golden end-times at 32/64 sites: the batched fast paths are passive.

The paper's experiments stop at 32 processors; the batched columnar
execution layer exists so the simulator can sweep far beyond that.  These
pins — recorded from the scalar (pre-columnar) engine — prove that the
vectorized routing/build/probe/aggregate paths are *simulation-invisible*
at and beyond paper scale, on both machines.  Bit-identical means exact
float equality: a one-ULP drift is a changed simulation, not a faster one.
"""

from repro.bench.harness import build_gamma, build_teradata, run_stored
from repro.hardware import GammaConfig, TeradataConfig
from repro.workloads.queries import join_abprime, selection_query

N = 10_000

#: Exact simulated response times (seconds) from the scalar reference engine.
GOLDEN_GAMMA = {
    (32, "selection"): 2.2193128520325276,
    (32, "joinABprime"): 6.213539069918693,
    (64, "selection"): 3.729671378861814,
    (64, "joinABprime"): 10.041169713821127,
}

GOLDEN_TERADATA = {
    (32, "selection"): 6.830785824561408,
    (32, "joinABprime"): 23.94093308771907,
    (64, "selection"): 5.911400315789464,
    (64, "joinABprime"): 15.22153603508775,
}


def _relations():
    return [("scaleA", N, "heap"), ("scaleBprime", N // 10, "heap")]


def _run_pair(machine):
    sel = run_stored(
        machine, lambda into: selection_query("scaleA", N, 0.01, into=into)
    )
    join = run_stored(
        machine,
        lambda into: join_abprime("scaleA", "scaleBprime", key=False, into=into),
    )
    assert sel.result_count == 100
    assert join.result_count == 1000
    return sel, join


def test_gamma_32_and_64_sites_bit_identical():
    for sites in (32, 64):
        machine = build_gamma(
            GammaConfig.paper_default().with_sites(sites), relations=_relations()
        )
        sel, join = _run_pair(machine)
        assert sel.response_time == GOLDEN_GAMMA[(sites, "selection")]
        assert join.response_time == GOLDEN_GAMMA[(sites, "joinABprime")]


def test_teradata_32_and_64_amps_bit_identical():
    for amps in (32, 64):
        machine = build_teradata(
            TeradataConfig(n_amps=amps), relations=_relations()
        )
        sel, join = _run_pair(machine)
        assert sel.response_time == GOLDEN_TERADATA[(amps, "selection")]
        assert join.response_time == GOLDEN_TERADATA[(amps, "joinABprime")]
