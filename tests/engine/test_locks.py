"""Tests for two-phase locking and deadlock detection."""

import pytest

from repro import (
    AppendTuple,
    DeleteTuple,
    ExactMatch,
    GammaConfig,
    GammaMachine,
    ModifyTuple,
    Query,
    RangePredicate,
)
from repro.engine.locks import (
    DeadlockError,
    LockManager,
    LockMode,
    LockTimeoutError,
)
from repro.sim import Delay, Simulation
from repro.workloads import generate_tuples


def run_lock_procs(*gens):
    sim = Simulation()
    manager = LockManager(sim)
    procs = [sim.spawn(g(manager), name=f"t{i}") for i, g in enumerate(gens)]
    sim.run()
    return manager, procs


class TestLockManager:
    def test_shared_locks_coexist(self):
        order = []

        def reader(name):
            def proc(manager):
                yield from manager.acquire(name, "frag", LockMode.SHARED)
                order.append(name)
                yield Delay(1.0)
                manager.release_all(name)

            return proc

        manager, _ = run_lock_procs(reader("a"), reader("b"))
        assert sorted(order) == ["a", "b"]
        assert manager.blocks == 0

    def test_exclusive_blocks_shared(self):
        events = []

        def writer(manager):
            yield from manager.acquire("w", "frag", LockMode.EXCLUSIVE)
            events.append(("w-got", 0.0))
            yield Delay(5.0)
            manager.release_all("w")

        def reader(manager):
            yield Delay(1.0)
            yield from manager.acquire("r", "frag", LockMode.SHARED)
            events.append(("r-got", "after"))
            manager.release_all("r")

        manager, procs = run_lock_procs(writer, reader)
        assert events[0][0] == "w-got"
        assert events[1][0] == "r-got"
        assert manager.blocks == 1

    def test_fifo_queue_order(self):
        got = []

        def txn(name, delay):
            def proc(manager):
                yield Delay(delay)
                yield from manager.acquire(name, "frag", LockMode.EXCLUSIVE)
                got.append(name)
                yield Delay(1.0)
                manager.release_all(name)

            return proc

        run_lock_procs(txn("first", 0.0), txn("second", 0.1), txn("third", 0.2))
        assert got == ["first", "second", "third"]

    def test_reacquire_is_idempotent(self):
        def proc(manager):
            yield from manager.acquire("t", "frag", LockMode.SHARED)
            yield from manager.acquire("t", "frag", LockMode.SHARED)
            manager.release_all("t")

        manager, _ = run_lock_procs(proc)
        assert manager.grants == 1

    def test_sole_holder_upgrade(self):
        def proc(manager):
            yield from manager.acquire("t", "frag", LockMode.SHARED)
            yield from manager.acquire("t", "frag", LockMode.EXCLUSIVE)
            assert manager.holders_of("frag") == {"t": LockMode.EXCLUSIVE}
            manager.release_all("t")

        run_lock_procs(proc)

    def test_deadlock_detected_and_victim_aborted(self):
        outcome = []

        def t1(manager):
            yield from manager.acquire("t1", "A", LockMode.EXCLUSIVE)
            yield Delay(1.0)
            try:
                yield from manager.acquire("t1", "B", LockMode.EXCLUSIVE)
                outcome.append("t1-ok")
            except DeadlockError:
                outcome.append("t1-aborted")
                manager.release_all("t1")

        def t2(manager):
            yield from manager.acquire("t2", "B", LockMode.EXCLUSIVE)
            yield Delay(2.0)
            # t1 is already waiting for B; asking for A closes the cycle.
            try:
                yield from manager.acquire("t2", "A", LockMode.EXCLUSIVE)
                outcome.append("t2-ok")
            except DeadlockError:
                outcome.append("t2-aborted")
                manager.release_all("t2")

        manager, _ = run_lock_procs(t1, t2)
        assert "t2-aborted" in outcome  # the requester closing the cycle
        assert "t1-ok" in outcome       # the survivor proceeds
        assert manager.deadlocks == 1

    def test_release_unblocks_compatible_group(self):
        got = []

        def writer(manager):
            yield from manager.acquire("w", "frag", LockMode.EXCLUSIVE)
            yield Delay(1.0)
            manager.release_all("w")

        def reader(name):
            def proc(manager):
                yield Delay(0.1)
                yield from manager.acquire(name, "frag", LockMode.SHARED)
                got.append(name)
                manager.release_all(name)

            return proc

        run_lock_procs(writer, reader("r1"), reader("r2"))
        assert sorted(got) == ["r1", "r2"]


class TestLockTimeout:
    def test_timed_out_wait_raises_and_withdraws(self):
        events = []

        def holder(manager):
            yield from manager.acquire("h", "frag", LockMode.EXCLUSIVE)
            yield Delay(5.0)
            manager.release_all("h")

        def impatient(manager):
            yield Delay(0.5)
            try:
                yield from manager.acquire(
                    "i", "frag", LockMode.EXCLUSIVE, timeout=1.0
                )
                events.append("i-got")
            except LockTimeoutError:
                events.append("i-timeout")
                manager.release_all("i")

        manager, _ = run_lock_procs(holder, impatient)
        assert events == ["i-timeout"]
        assert manager.timeouts == 1
        # The withdrawn request holds nothing and queues nowhere.
        assert "i" not in manager.holders_of("frag")
        assert not manager._locks["frag"].queue

    def test_timeout_leaves_no_dangling_waits_for_edge(self):
        # Regression: a timed-out waiter whose waits-for edges survived
        # would make a later blocker look like a deadlock cycle.
        def holder(manager):
            yield from manager.acquire("h", "frag", LockMode.EXCLUSIVE)
            yield Delay(5.0)
            manager.release_all("h")

        def impatient(manager):
            yield Delay(0.5)
            with pytest.raises(LockTimeoutError):
                yield from manager.acquire(
                    "i", "frag", LockMode.EXCLUSIVE, timeout=1.0
                )
            manager.release_all("i")

        got = []

        def patient(manager):
            yield Delay(2.0)
            # Blocks behind the holder; must NOT be misdiagnosed as a
            # deadlock via a stale edge from the departed "i".
            yield from manager.acquire("p", "frag", LockMode.EXCLUSIVE)
            got.append("p")
            manager.release_all("p")

        manager, _ = run_lock_procs(holder, impatient, patient)
        assert got == ["p"]
        assert manager.deadlocks == 0
        assert manager._waits_for == {}

    def test_timeout_withdrawal_unblocks_compatible_waiters(self):
        # An X request queued between two S groups gates the second; its
        # withdrawal must re-dispatch the now-compatible readers.
        got = []

        def reader1(manager):
            yield from manager.acquire("r1", "frag", LockMode.SHARED)
            yield Delay(3.0)
            manager.release_all("r1")

        def writer(manager):
            yield Delay(0.5)
            with pytest.raises(LockTimeoutError):
                yield from manager.acquire(
                    "w", "frag", LockMode.EXCLUSIVE, timeout=1.0
                )
            manager.release_all("w")

        def reader2(manager):
            yield Delay(1.0)
            yield from manager.acquire("r2", "frag", LockMode.SHARED)
            got.append((("r2-got"), manager.sim.now))
            manager.release_all("r2")

        manager, _ = run_lock_procs(reader1, writer, reader2)
        # r2 is granted the moment the writer withdraws (t=1.5), not when
        # r1 finally releases at t=3.
        assert got == [("r2-got", pytest.approx(1.5))]

    def test_granted_wait_under_timeout_is_normal(self):
        events = []

        def holder(manager):
            yield from manager.acquire("h", "frag", LockMode.EXCLUSIVE)
            yield Delay(0.5)
            manager.release_all("h")

        def waiter(manager):
            yield Delay(0.1)
            yield from manager.acquire(
                "w", "frag", LockMode.EXCLUSIVE, timeout=10.0
            )
            events.append("w-got")
            manager.release_all("w")

        manager, _ = run_lock_procs(holder, waiter)
        assert events == ["w-got"]
        assert manager.timeouts == 0


class TestEngineLocking:
    def _machine(self):
        m = GammaMachine(GammaConfig(n_disk_sites=4, n_diskless=4))
        m.load_wisconsin("r", 2_000, seed=81, clustered_on="unique1")
        return m

    def test_concurrent_writers_serialise(self):
        # Two concurrent modifies of the SAME tuple: the lock manager must
        # serialise them — both apply, one after the other.
        m = self._machine()
        r1, r2 = m.run_concurrent([
            ModifyTuple("r", ExactMatch("unique1", 50), "odd100", 111),
            ModifyTuple("r", ExactMatch("unique1", 50), "odd100", 222),
        ])
        assert r1.result_count == 1
        assert r2.result_count == 1
        assert r1.response_time != r2.response_time  # one waited
        final = m.run(Query.select("r", ExactMatch("unique1", 50)))
        pos = m.catalog.lookup("r").schema.position("odd100")
        assert final.tuples[0][pos] in (111, 222)

    def test_reader_and_writer_both_complete_concurrently(self):
        m = self._machine()
        fresh = (90_000, 90_000) + next(iter(generate_tuples(1, seed=1)))[2:]
        query = Query.select("r", RangePredicate("unique1", 0, 499),
                             into="out")
        sel, upd = m.run_concurrent([query, AppendTuple("r", fresh)])
        assert sel.result_count == 500
        assert upd.result_count == 1
        # The appended tuple is durable afterwards.
        check = m.run(Query.select("r", ExactMatch("unique1", 90_000)))
        assert check.result_count == 1

    def test_concurrent_update_blocks_behind_reader(self):
        # An X request on a fragment S-locked by a long scan must wait.
        m = self._machine()
        fresh = (91_000, 91_000) + next(iter(generate_tuples(1, seed=2)))[2:]
        solo = self._machine().update(AppendTuple("r", fresh))
        query = Query.select("r", RangePredicate("unique2", 0, 1999),
                             into="out")
        _sel, upd = m.run_concurrent([query, AppendTuple("r", fresh)])
        assert upd.response_time > solo.response_time

    def test_single_user_lock_stats(self):
        m = self._machine()
        m.run(Query.select("r", RangePredicate("unique1", 0, 9), into="o"))
        # Locks are taken (one per scanned fragment) but never block.
        r = m.update(DeleteTuple("r", ExactMatch("unique1", 5)))
        assert r.result_count == 1
