"""Regression tests for UtilisationReport / peak_utilisation edge cases.

Two historical confusions: resource suffix matching must never treat a
*node* whose name contains a resource word as that resource
(``"nic0.cpu"`` is a CPU on node nic0, not a NIC), and zero-elapsed or
NaN inputs must render as ``0.00``, never ``nan``.
"""

import math

from repro.metrics import peak_utilisation
from repro.metrics.report import NodeUtilisation, UtilisationReport


class TestPeakUtilisation:
    def test_bare_key_matches_resource_exactly(self):
        assert peak_utilisation({"ring": 0.3}, "ring") == 0.3
        assert peak_utilisation({"ynet": 0.8}, "ynet") == 0.8

    def test_suffix_matching_is_strict(self):
        utils = {"host.nic": 0.7, "site0.nic": 0.5}
        assert peak_utilisation(utils, "nic") == 0.7

    def test_node_named_like_a_resource_never_matches(self):
        # "nic" must not match the cpu of a node that contains "nic".
        utils = {"nic0.cpu": 0.9, "mechanic.disk": 0.8, "site0.nic": 0.4}
        assert peak_utilisation(utils, "nic") == 0.4
        assert peak_utilisation(utils, "cpu") == 0.9
        assert peak_utilisation(utils, "disk") == 0.8

    def test_empty_mapping_yields_zero(self):
        assert peak_utilisation({}, "cpu") == 0.0

    def test_no_matching_resource_yields_zero(self):
        assert peak_utilisation({"site0.cpu": 0.9}, "disk") == 0.0

    def test_non_finite_values_are_ignored(self):
        utils = {"site0.cpu": float("nan"), "site1.cpu": 0.2,
                 "site2.cpu": float("inf")}
        assert peak_utilisation(utils, "cpu") == 0.2
        assert peak_utilisation({"site0.cpu": float("nan")}, "cpu") == 0.0


class TestUtilisationReportEdges:
    def _nan_report(self):
        rows = [
            NodeUtilisation(name="site0", cpu=float("nan"),
                            disk=float("nan"), nic=None),
            NodeUtilisation(name="site1", cpu=0.25, disk=0.5, nic=0.1),
        ]
        return UtilisationReport(0.0, rows)

    def test_zero_elapsed_renders_zero_not_nan(self):
        report = self._nan_report()
        for text in (report.to_markdown(), str(report)):
            assert "nan" not in text.lower()
            assert "0.00" in text

    def test_max_utilisation_skips_non_finite(self):
        report = self._nan_report()
        assert report.max_utilisation("cpu") == 0.25
        assert report.max_utilisation("disk") == 0.5

    def test_bottleneck_ignores_nan_rows(self):
        node, resource, value = self._nan_report().bottleneck()
        assert (node, resource) == ("site1", "disk")
        assert value == 0.5
        assert math.isfinite(value)
