"""Unit tests for the observability layer: registry, traces, reports.

The load-bearing property throughout is passivity — metrics, traces and
utilisation reports observe the simulation without scheduling events, so
a run's timeline is bit-identical whether or not anyone is watching.
"""

import json

import pytest

from repro import (
    GammaConfig,
    GammaMachine,
    MetricsRegistry,
    Query,
    RangePredicate,
    TraceBuffer,
)
from repro.metrics import peak_utilisation


class TestMetricsRegistry:
    def test_typed_recording_feeds_node_and_legacy_counters(self):
        reg = MetricsRegistry()
        reg.record_packet_sent("disk0", 40)
        reg.record_packet_sent("disk0", 10, short_circuit=True)
        reg.record_packet_received("disk1", 50)
        reg.record_control_message("sched", 3)
        reg.record_spool_write("disk1", 2)
        reg.record_spool_read("disk1")

        assert reg.node("disk0").packets_sent == 2
        assert reg.node("disk0").tuples_out == 50
        assert reg.node("disk0").packets_short_circuited == 1
        assert reg.node("disk1").tuples_in == 50
        assert reg.node("sched").control_messages == 3
        assert reg.node("disk1").spool_pages_written == 2
        assert reg.node("disk1").spool_pages_read == 1
        # Legacy query-wide keys stay in sync.
        assert reg.query["packets_sent"] == 2
        assert reg.query["tuples_shipped"] == 50
        assert reg.query["packets_short_circuited"] == 1
        assert reg.query["packets_received"] == 1
        assert reg.query["control_messages"] == 3
        assert reg.query["spool_pages_written"] == 2
        assert reg.query["spool_pages_read"] == 1

    def test_hash_table_peak_and_overflow(self):
        reg = MetricsRegistry()
        reg.record_hash_table_bytes("disk0", 1000.0)
        reg.record_hash_table_bytes("disk0", 400.0)  # below peak: ignored
        reg.record_overflow_chunk("disk0")
        assert reg.node("disk0").hash_table_peak_bytes == 1000.0
        assert reg.node("disk0").overflow_chunks == 1
        assert reg.query["hash_overflows"] == 1

    def test_operator_lifecycle(self):
        reg = MetricsRegistry()
        reg.record_operator_start("scan.disk0.1", "disk0", 1.5)
        reg.record_operator_tuples("scan.disk0.1", "disk0",
                                   tuples_in=10, tuples_out=4)
        reg.record_operator_finish("scan.disk0.1", "disk0", 4.0)
        op = reg.operator("scan.disk0.1", "disk0")
        assert op.elapsed == pytest.approx(2.5)
        assert (op.tuples_in, op.tuples_out) == (10, 4)

    def test_snapshot_is_plain_data(self):
        reg = MetricsRegistry()
        reg.record_packet_sent("disk0", 5)
        reg.record_operator_start("scan", "disk0", 0.0)
        snap = reg.snapshot()
        json.dumps(snap)  # fully serialisable
        assert snap["nodes"]["disk0"]["packets_sent"] == 1
        assert snap["operators"]["scan"]["started_at"] == 0.0


class TestTraceBuffer:
    def test_chrome_document_shape(self):
        trace = TraceBuffer()
        trace.duration("disk0", "disk", "read", start=1.0, dur=0.5,
                       cat="disk", args={"page": 7})
        trace.instant("disk0", "port", "send:scan", ts=2.0)
        doc = json.loads(trace.to_json())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        phases = [e["ph"] for e in doc["traceEvents"]]
        # Metadata events name the process and both lanes.
        assert phases.count("M") == 3
        dur = next(e for e in doc["traceEvents"] if e["ph"] == "X")
        assert dur["ts"] == pytest.approx(1_000_000.0)
        assert dur["dur"] == pytest.approx(500_000.0)
        assert dur["args"] == {"page": 7}
        inst = next(e for e in doc["traceEvents"] if e["ph"] == "i")
        assert inst["s"] == "t"

    def test_lanes_get_distinct_thread_ids(self):
        trace = TraceBuffer()
        trace.duration("disk0", "cpu", "w", 0.0, 1.0)
        trace.duration("disk0", "disk", "r", 0.0, 1.0)
        trace.duration("disk1", "cpu", "w", 0.0, 1.0)
        xs = [e for e in trace.events if e["ph"] == "X"]
        assert xs[0]["pid"] == xs[1]["pid"] != xs[2]["pid"]
        assert xs[0]["tid"] != xs[1]["tid"]

    def test_write_round_trips(self, tmp_path):
        trace = TraceBuffer()
        trace.duration("disk0", "cpu", "w", 0.0, 1.0)
        path = trace.write(str(tmp_path / "out.trace.json"))
        with open(path) as fh:
            doc = json.load(fh)
        assert len(doc["traceEvents"]) == len(trace.events)

    def test_counter_unit_suffix(self):
        trace = TraceBuffer()
        trace.counter("disk0", "qdepth", 1.0, {"qdepth": 3.0},
                      unit="requests")
        counter = next(e for e in trace.events if e["ph"] == "C")
        assert counter["name"] == "qdepth [requests]"


class TestTraceBufferCap:
    def test_cap_rings_data_events_and_counts_drops(self):
        trace = TraceBuffer(cap=3)
        for i in range(8):
            trace.instant("disk0", "port", f"e{i}", ts=float(i))
        data = [e for e in trace.events if e["ph"] == "i"]
        assert [e["name"] for e in data] == ["e5", "e6", "e7"]
        assert trace.dropped == 5

    def test_metadata_survives_eviction(self):
        """Process/thread name records are never evicted — an old trace
        must still label every lane in Perfetto."""
        trace = TraceBuffer(cap=2)
        for node in ("disk0", "disk1", "disk2"):
            trace.duration(node, "cpu", "w", 0.0, 1.0)
        names = {
            e["args"]["name"]
            for e in trace.events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {"disk0", "disk1", "disk2"}
        assert len([e for e in trace.events if e["ph"] == "X"]) == 2

    def test_capped_chrome_doc_reports_drops(self):
        trace = TraceBuffer(cap=2)
        for i in range(5):
            trace.instant("disk0", "port", f"e{i}", ts=float(i))
        doc = json.loads(trace.to_json())
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["otherData"] == {"cap": 2, "droppedEvents": 3}

    def test_uncapped_doc_shape_unchanged(self):
        """No cap, no otherData: the historical two-key document shape
        stays pinned for existing consumers."""
        trace = TraceBuffer()
        trace.instant("disk0", "port", "e", ts=0.0)
        doc = json.loads(trace.to_json())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert trace.dropped == 0


def _machine(n_sites=2, n=2_000):
    machine = GammaMachine(
        GammaConfig.paper_default().with_sites(n_sites)
    )
    machine.load_wisconsin("rel", n, seed=42)
    return machine


def _select(into):
    return Query.select(
        "rel", RangePredicate("unique2", 0, 199), into=into
    )


class TestEndToEnd:
    def test_tracing_never_perturbs_the_timeline(self):
        machine = _machine()
        plain = machine.run(_select("plain"))
        trace = TraceBuffer()
        traced = machine.run(_select("traced"), trace=trace)
        # Bit-identical, not approximately equal.
        assert plain.response_time == traced.response_time
        assert plain.result_count == traced.result_count
        assert plain.stats == traced.stats
        assert len(trace.events) > 0

    def test_trace_covers_operators_and_resources(self):
        machine = _machine()
        trace = TraceBuffer()
        machine.run(_select("out"), trace=trace)
        cats = {e.get("cat") for e in trace.events if e["ph"] == "X"}
        assert "operator" in cats
        assert "disk" in cats or "cpu" in cats
        names = {e["name"] for e in trace.events if e["ph"] == "i"}
        assert any(name.startswith("send:") for name in names)
        assert any(name.startswith("recv:") for name in names)
        doc = json.loads(trace.to_json())
        assert doc["traceEvents"]

    def test_query_result_carries_node_and_operator_metrics(self):
        machine = _machine()
        result = machine.run(_select("out"))
        assert set(result.node_metrics) >= {"disk0", "disk1"}
        total_out = sum(
            nm["tuples_out"] for nm in result.node_metrics.values()
        )
        assert total_out >= result.result_count
        assert any(
            label.startswith("scan") for label in result.operator_metrics
        )

    def test_utilisation_report_shape_and_bottleneck(self):
        machine = _machine()
        result = machine.run(_select("out"))
        report = result.utilisation_report
        assert report is not None
        assert report.elapsed == pytest.approx(result.response_time)
        names = {row.name for row in report.rows}
        assert {"disk0", "disk1", "host"} <= names
        node, resource, value = report.bottleneck()
        assert 0.0 < value <= 1.0
        # A non-indexed selection is disk-bound (the Figures 1-2 argument).
        assert resource == "disk"
        assert report.max_utilisation("disk") >= report.max_utilisation("cpu")
        rendered = report.to_markdown()
        assert "Bottleneck" in rendered and "disk0" in rendered

    def test_utilisations_dict_and_peak_helper(self):
        machine = _machine()
        result = machine.run(_select("out"))
        utils = result.utilisations
        assert "disk0.cpu" in utils and "disk0.disk" in utils
        assert "ring" in utils
        assert peak_utilisation(utils, "disk") == max(
            v for k, v in utils.items() if k.endswith(".disk")
        )
        assert peak_utilisation(utils, "ring") == utils["ring"]
        assert peak_utilisation({}, "disk") == 0.0

    def test_stats_view_matches_registry(self):
        machine = _machine()
        result = machine.run(_select("out"))
        assert result.stats["packets_sent"] > 0
        assert result.stats["packets_received"] > 0
