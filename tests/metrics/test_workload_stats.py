"""Edge cases for the latency summary machinery in metrics.workload."""

import pytest

from repro.metrics.workload import LatencyStats, percentile


class TestPercentile:
    def test_single_sample_every_quantile(self):
        for q in (1.0, 50.0, 95.0, 100.0):
            assert percentile([7.5], q) == 7.5

    def test_q100_is_the_maximum(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(values, 100.0) == 5.0

    def test_all_equal_samples(self):
        values = [2.5] * 10
        for q in (1.0, 50.0, 99.0, 100.0):
            assert percentile(values, q) == 2.5

    def test_empty_input_returns_zero(self):
        assert percentile([], 50.0) == 0.0
        assert percentile([], 100.0) == 0.0

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError, match="outside"):
            percentile([1.0], 0.0)
        with pytest.raises(ValueError, match="outside"):
            percentile([1.0], 100.5)

    def test_nearest_rank_no_interpolation(self):
        # 10 samples: p95 is the ceil(0.95*10)=10th order statistic.
        values = [float(v) for v in range(1, 11)]
        assert percentile(values, 95.0) == 10.0
        assert percentile(values, 50.0) == 5.0
        assert percentile(values, 10.0) == 1.0


class TestLatencyStats:
    def test_empty_input_zero_path(self):
        stats = LatencyStats.from_values([])
        assert stats == LatencyStats(0, 0.0, 0.0, 0.0, 0.0, 0.0)

    def test_single_sample(self):
        stats = LatencyStats.from_values([3.0])
        assert stats.count == 1
        assert stats.mean == 3.0
        assert stats.p50 == stats.p95 == stats.p99 == stats.max == 3.0

    def test_all_equal(self):
        stats = LatencyStats.from_values([4.0] * 7)
        assert stats.count == 7
        assert stats.mean == 4.0
        assert stats.p50 == stats.p95 == stats.p99 == stats.max == 4.0

    def test_as_dict_round_trip(self):
        stats = LatencyStats.from_values([1.0, 2.0, 3.0])
        payload = stats.as_dict()
        assert payload["count"] == 3
        assert payload["mean"] == pytest.approx(2.0)
        assert payload["max"] == 3.0
