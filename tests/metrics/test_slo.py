"""Sliding-window SLO tracking and the rule-based detectors.

The S-curve edge cases are the point here: empty windows, a single
sample, a window shorter than warm-up, and all-error intervals must all
produce well-defined numbers (zeros, not NaNs or crashes) because the
telemetry sampler publishes the snapshot every interval unconditionally.
"""

import pytest

from repro.errors import ReproError
from repro.metrics import (
    Alert,
    SlidingWindowTracker,
    TelemetrySampler,
    detect_all,
    detect_convoy,
    detect_overload,
    detect_skew,
)


class TestSlidingWindowEdges:
    def test_rejects_nonpositive_window(self):
        with pytest.raises(ReproError):
            SlidingWindowTracker(window=0.0)

    def test_empty_window_is_all_zero(self):
        slo = SlidingWindowTracker(window=2.0)
        snap = slo.snapshot(10.0)
        assert snap == {
            "t": 10.0, "window": 2.0, "count": 0, "errors": 0,
            "error_rate": 0.0, "throughput": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    def test_single_sample(self):
        slo = SlidingWindowTracker(window=2.0)
        slo.record(1.0, 0.4, True)
        snap = slo.snapshot(1.0)
        assert snap["count"] == 1
        assert snap["p50"] == snap["p95"] == snap["p99"] == 0.4
        assert snap["throughput"] == pytest.approx(0.5)
        # Outside the trailing window it vanishes again.
        assert slo.snapshot(3.5)["count"] == 0

    def test_window_is_left_open_right_closed(self):
        slo = SlidingWindowTracker(window=1.0)
        slo.record(1.0, 0.1, True)
        slo.record(2.0, 0.2, True)
        # (1.0, 2.0]: the completion at exactly now-window is excluded,
        # the one at now is included.
        snap = slo.snapshot(2.0)
        assert snap["count"] == 1
        assert snap["p50"] == 0.2

    def test_rejects_decreasing_finish_order(self):
        slo = SlidingWindowTracker(window=2.0)
        slo.record(2.0, 0.1, True)
        with pytest.raises(ReproError, match="nondecreasing"):
            slo.record(1.0, 0.1, True)

    def test_all_error_interval(self):
        """Every completion failed: error_rate 1, percentiles 0 (they
        summarise successes only), throughput 0."""
        slo = SlidingWindowTracker(window=2.0)
        for t in (0.5, 1.0, 1.5):
            slo.record(t, 5.0, False)
        snap = slo.snapshot(1.5)
        assert snap["count"] == 3
        assert snap["errors"] == 3
        assert snap["error_rate"] == 1.0
        assert snap["throughput"] == 0.0
        assert snap["p50"] == snap["p99"] == 0.0

    def test_mixed_errors_split_percentiles_from_rate(self):
        slo = SlidingWindowTracker(window=4.0)
        slo.record(1.0, 0.2, True)
        slo.record(2.0, 9.0, False)
        slo.record(3.0, 0.4, True)
        snap = slo.snapshot(3.0)
        assert snap["error_rate"] == pytest.approx(1 / 3)
        # The failed query's latency does not pollute the percentiles.
        assert snap["p99"] == 0.4


class TestWarmup:
    def test_too_few_successes_is_none(self):
        slo = SlidingWindowTracker(window=2.0)
        for t in (1.0, 2.0, 3.0):
            slo.record(t, 0.5, True)
        assert slo.warmup_end() is None

    def test_warmup_detected_after_cold_start(self):
        """Cold start latencies 4x steady state; the windowed median
        settles only after the window slides past them."""
        slo = SlidingWindowTracker(window=2.0)
        t = 0.0
        for latency in [2.0, 2.0, 2.0] + [0.5] * 12:
            t += 0.5
            slo.record(t, latency, True)
        warm = slo.warmup_end()
        assert warm is not None
        # The first three (cold) completions cannot be the settle point.
        assert warm > 1.5

    def test_window_shorter_than_warmup(self):
        """A tiny window forgets the cold start immediately — warm-up
        resolves to the first completion, never None/negative."""
        slo = SlidingWindowTracker(window=0.25)
        t = 0.0
        for latency in [2.0] * 3 + [0.5] * 9:
            t += 0.5
            slo.record(t, latency, True)
        warm = slo.warmup_end()
        assert warm is not None
        assert warm >= 0.5

    def test_steady_run_warms_up_immediately(self):
        slo = SlidingWindowTracker(window=2.0)
        for i in range(8):
            slo.record(0.5 * (i + 1), 0.5, True)
        assert slo.warmup_end() == 0.5


class TestDetectors:
    def test_overload_fires_once_per_excursion(self):
        times = [0.5 * (i + 1) for i in range(8)]
        depths = [0, 1, 2, 4, 4, 2, 3, 4]
        alerts = detect_overload(times, depths, sustain=3, min_growth=2.0)
        assert [a.at for a in alerts] == [2.0]
        assert alerts[0].kind == "overload"
        assert "0 -> 4" in alerts[0].detail

    def test_overload_rearms_after_shrink(self):
        times = [float(i) for i in range(10)]
        depths = [0, 2, 4, 6, 5, 6, 8, 10, 12, 14]
        alerts = detect_overload(times, depths, sustain=3, min_growth=2.0)
        assert len(alerts) == 2
        assert alerts[0].at == 3.0
        assert alerts[1].at > 4.0

    def test_flat_queue_never_fires(self):
        times = [float(i) for i in range(10)]
        assert detect_overload(times, [3.0] * 10) == []

    def test_convoy_threshold_and_sustain(self):
        times = [float(i) for i in range(6)]
        waiting = [0, 5, 5, 0, 5, 0]
        alerts = detect_convoy(times, waiting, threshold=2.0, sustain=2)
        assert [a.at for a in alerts] == [2.0]

    def test_skew_sustain(self):
        times = [float(i) for i in range(6)]
        spreads = [0.6, 0.6, 0.6, 0.1, 0.6, 0.6]
        alerts = detect_skew(times, spreads, threshold=0.5, sustain=3)
        assert [a.at for a in alerts] == [2.0]

    def test_detect_all_skips_missing_tracks_and_sorts(self):
        sampler = TelemetrySampler(interval=0.5)
        queued = sampler.series_for("admission", "queued", "requests")
        spread = sampler.series_for("cluster", "cpu.util.spread", "frac")
        for i, (q, s) in enumerate(
            [(0, 0.9), (2, 0.9), (4, 0.9), (6, 0.9)]
        ):
            t = 0.5 * (i + 1)
            queued.append(t, float(q))
            spread.append(t, s)
        # No locks.waiting series wired: the convoy detector is skipped.
        alerts = detect_all(sampler)
        kinds = [a.kind for a in alerts]
        assert "overload" in kinds and "skew" in kinds
        assert "convoy" not in kinds
        assert [a.at for a in alerts] == sorted(a.at for a in alerts)

    def test_alert_round_trip(self):
        alert = Alert("convoy", 2.5, 6.0, "lock waiters >= 2")
        assert alert.as_dict() == {
            "kind": "convoy", "at": 2.5, "value": 6.0,
            "detail": "lock waiters >= 2",
        }
        assert str(alert) == "[convoy] t=2.5s lock waiters >= 2"
