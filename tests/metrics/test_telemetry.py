"""Telemetry plane: pulled sampling, series, dashboard, counter export.

The load-bearing invariant is passivity — the kernel pulls the sampler
without scheduling events, so a run's event count, sequence numbers and
final clock are bit-identical with sampling on or off.  The golden
timeline suites assert that on both full machines; here we pin it on a
bare kernel, plus the sampler's own mechanics: integer-tick boundaries,
delta-of-accrual interval math, ring-buffer caps, the JSON schema, and
the Perfetto counter-track naming.
"""

import pytest

from repro.errors import ReproError
from repro.metrics import (
    SampleSeries,
    TelemetrySampler,
    TraceBuffer,
    render_dashboard,
)
from repro.sim import Delay, Server, Simulation, Use


def _busy_process(sim, server, periods):
    """A process that alternates Use(duration) / Delay(duration)."""

    def proc():
        for use, idle in periods:
            yield Use(server, use)
            yield Delay(idle)

    sim.spawn(proc(), name="worker")


class TestSampleSeries:
    def test_uncapped_keeps_everything(self):
        s = SampleSeries("node", "track", "frac")
        for i in range(100):
            s.append(i * 0.25, float(i))
        assert len(s) == 100
        assert s.dropped == 0
        assert s.last == 99.0
        assert s.key == "node.track"

    def test_cap_rings_and_counts_drops(self):
        s = SampleSeries("node", "track", "frac", cap=4)
        for i in range(10):
            s.append(float(i), float(i))
        assert len(s) == 4
        assert list(s.values) == [6.0, 7.0, 8.0, 9.0]
        assert list(s.times) == [6.0, 7.0, 8.0, 9.0]
        assert s.dropped == 6

    def test_as_dict_shape(self):
        s = SampleSeries("cpu", "util", "frac", cap=2)
        s.append(0.25, 0.5)
        assert s.as_dict() == {
            "node": "cpu",
            "track": "util",
            "unit": "frac",
            "dropped": 0,
            "times": [0.25],
            "values": [0.5],
        }


class TestSamplerMechanics:
    def test_rejects_bad_interval_and_cap(self):
        with pytest.raises(ReproError):
            TelemetrySampler(interval=0.0)
        with pytest.raises(ReproError):
            TelemetrySampler(cap=0)

    def test_passive_by_construction(self):
        """Same workload with and without a sampler: event count, final
        clock and server accounting all bit-identical."""
        results = []
        for attach in (False, True):
            sim = Simulation()
            server = Server("cpu")
            _busy_process(sim, server, [(0.4, 0.1)] * 5)
            sampler = TelemetrySampler(interval=0.25)
            if attach:
                sampler.attach(sim)
                sampler.watch_server(server, "n0", "cpu")
            end = sim.run()
            results.append(
                (end, sim.events_processed, server.busy_time,
                 server.requests)
            )
        assert results[0] == results[1]

    def test_integer_tick_boundaries(self):
        """Boundaries are k*interval exactly — no float accumulation."""
        sim = Simulation()
        server = Server("cpu")
        _busy_process(sim, server, [(0.4, 0.1)] * 4)  # runs to t=2.0
        sampler = TelemetrySampler(interval=0.3)
        sampler.attach(sim)
        sampler.watch_server(server, "n0", "cpu")
        sim.run()
        times = list(sampler.series["n0.cpu.util"].times)
        assert times == [0.3 * k for k in range(1, len(times) + 1)]

    def test_interval_utilisation_is_exact_delta(self):
        """A server busy 0.4s of every 0.5s samples at 0.8 utilisation
        on a 0.5s cadence (the interval delta, not a point sample)."""
        sim = Simulation()
        server = Server("cpu")
        _busy_process(sim, server, [(0.4, 0.1)] * 4)
        sampler = TelemetrySampler(interval=0.5)
        sampler.attach(sim)
        sampler.watch_server(server, "n0", "cpu")
        sim.run()
        utils = list(sampler.series["n0.cpu.util"].values)
        assert utils == pytest.approx([0.8, 0.8, 0.8, 0.8])

    def test_run_until_samples_the_tail(self):
        """A cutoff (or drained-queue) run still samples boundaries the
        clock crosses on its way to ``until``."""
        sim = Simulation()
        server = Server("cpu")
        _busy_process(sim, server, [(0.4, 0.1)])
        sampler = TelemetrySampler(interval=0.25)
        sampler.attach(sim)
        sampler.watch_server(server, "n0", "cpu")
        sim.run(until=1.0)
        assert list(sampler.series["n0.cpu.util"].times) == [
            0.25, 0.5, 0.75, 1.0,
        ]

    def test_cap_applies_to_every_series(self):
        sim = Simulation()
        server = Server("cpu")
        _busy_process(sim, server, [(0.4, 0.1)] * 10)  # 5s of work
        sampler = TelemetrySampler(interval=0.25, cap=4)
        sampler.attach(sim)
        sampler.watch_server(server, "n0", "cpu")
        sim.run()
        series = sampler.series["n0.cpu.util"]
        assert len(series) == 4
        assert series.dropped > 0
        assert sampler.dropped >= series.dropped
        assert sampler.to_dict()["dropped"] == sampler.dropped

    def test_gauge_and_group(self):
        sim = Simulation()
        fast = Server("fast")
        slow = Server("slow")
        _busy_process(sim, fast, [(0.5, 0.0)] * 2)
        _busy_process(sim, slow, [(0.25, 0.25)] * 2)
        sampler = TelemetrySampler(interval=0.5)
        sampler.attach(sim)
        sampler.watch_group(
            "cluster", "cpu.util", [("fast", fast), ("slow", slow)]
        )
        ticks = []
        sampler.add_gauge("toy", "constant", "count", lambda: 7.0)
        sampler.add_probe(lambda t: ticks.append(t))
        sim.run()
        mean = sampler.series["cluster.cpu.util.mean"]
        spread = sampler.series["cluster.cpu.util.spread"]
        assert list(mean.values) == pytest.approx([0.75, 0.75])
        assert list(spread.values) == pytest.approx([0.5, 0.5])
        assert list(sampler.series["toy.constant"].values) == [7.0, 7.0]
        assert ticks == [0.5, 1.0]


class TestExports:
    def _sampled(self):
        sim = Simulation()
        server = Server("cpu")
        _busy_process(sim, server, [(0.4, 0.1)] * 3)
        sampler = TelemetrySampler(interval=0.5)
        sampler.attach(sim)
        sampler.watch_server(server, "n0", "cpu")
        sim.run()
        return sampler

    def test_to_dict_schema(self):
        doc = self._sampled().to_dict()
        assert set(doc) == {
            "interval", "samples", "cap", "dropped", "series",
        }
        assert doc["interval"] == 0.5
        assert doc["cap"] is None
        assert list(doc["series"]) == sorted(doc["series"])
        entry = doc["series"]["n0.cpu.util"]
        assert set(entry) == {
            "node", "track", "unit", "dropped", "times", "values",
        }
        assert len(entry["times"]) == len(entry["values"])

    def test_export_counters_pins_unit_suffix(self):
        """Counter tracks carry their unit in the name — pinned, so
        Perfetto UIs keep showing '[frac]' etc. after refactors."""
        sampler = self._sampled()
        trace = TraceBuffer()
        emitted = sampler.export_counters(trace)
        counters = [e for e in trace.events if e["ph"] == "C"]
        assert emitted == len(counters) > 0
        names = {e["name"] for e in counters}
        assert names == {
            "cpu.util [frac]", "cpu.qdepth [requests]", "cpu.wait [s]",
        }
        # Counter events land under the series' node process.
        doc = trace.to_chrome()
        process_names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e.get("name") == "process_name"
        }
        assert "n0" in process_names

    def test_dashboard_renders_every_track(self):
        sampler = self._sampled()
        text = render_dashboard(sampler, width=20)
        assert "telemetry: " in text.splitlines()[0]
        for key in sampler.series:
            assert key in text
        assert "last=" in text and "peak=" in text

    def test_dashboard_appends_alerts(self):
        from repro.metrics import Alert

        sampler = self._sampled()
        text = render_dashboard(
            sampler, alerts=[Alert("overload", 1.5, 9.0, "queue grew")]
        )
        assert "alerts:" in text
        assert "[overload] t=1.5s queue grew" in text
