"""Query-profiler tests: attribution, critical path, rendering.

The profiler must be *passive* (the golden-timeline tests pin that) and
*complete*: every busy second a hardware server records must land in
exactly one operator span (or the ``(other)`` bucket), so span totals
reconcile with the utilisation report.
"""

import json

import pytest

from repro.bench import build_gamma
from repro.bench.harness import run_stored
from repro.engine import JoinMode
from repro.hardware import KB, GammaConfig
from repro.metrics import PhaseTimeline, Profiler, TraceBuffer, explain_analyze
from repro.metrics.profile import OTHER, _critical_path
from repro.workloads.queries import join_abprime, join_cselaselb


N = 4_000


def _machine(**overrides):
    config = GammaConfig.paper_default().with_sites(4)
    for name, value in overrides.items():
        config = getattr(config, name)(value)
    return build_gamma(
        config,
        relations=[("A", N, "heap"), ("B", N, "heap"),
                   ("Bp", N // 10, "heap"), ("C", N // 10, "heap")],
    )


def _profiled_join(machine=None):
    machine = machine or _machine()
    return run_stored(
        machine,
        lambda into: join_abprime("A", "Bp", key=False, into=into),
        profile=True,
    )


class TestSpanAccounting:
    def test_span_totals_reconcile_with_utilisation_report(self):
        """Per-class busy across all spans == per-class busy across all
        servers (capacity-1 FIFO servers, so utilisation * elapsed is
        exact busy seconds)."""
        result = _profiled_join()
        profile = result.profile
        elapsed = result.response_time
        by_class = {"cpu": 0.0, "disk": 0.0, "net": 0.0}
        for span in profile.spans.values():
            for cls, busy in span.busy.items():
                by_class[cls] += busy
        report_busy = {"cpu": 0.0, "disk": 0.0, "net": 0.0}
        for key, fraction in result.utilisations.items():
            resource = key.rsplit(".", 1)[-1]
            cls = {"cpu": "cpu", "disk": "disk", "nic": "net",
                   "ring": "net"}[resource]
            report_busy[cls] += fraction * elapsed
        for cls in by_class:
            assert by_class[cls] == pytest.approx(report_busy[cls], rel=1e-9)

    def test_join_has_distinct_build_and_probe_phases(self):
        profile = _profiled_join().profile
        phases = {
            (span.op_id, phase): busy
            for span in profile.spans.values()
            for phase, busy in span.by_phase.items()
        }
        builds = [k for k in phases if k[1] == "build"]
        probes = [k for k in phases if k[1] == "probe"]
        assert builds and probes
        assert all(phases[k] > 0 for k in builds + probes)
        # The phase timeline keys them separately too.
        keys = set(profile.timeline.phase_busy)
        assert any(k.endswith("/build") for k in keys)
        assert any(k.endswith("/probe") for k in keys)

    def test_tuple_and_page_counters_populated(self):
        profile = _profiled_join().profile
        spans = profile.spans
        scans = [s for s in spans.values() if s.op_id.startswith("scan")]
        assert sum(s.tuples_out for s in scans) >= N
        assert sum(s.pages for s in scans) > 0
        assert OTHER not in {s.op_id for s in scans}


class _FakeScan:
    def __init__(self, op_id):
        self.op_id = op_id

    def describe(self):
        return f"scan({self.op_id})"


class _FakeJoin:
    def __init__(self, op_id, build_input, source):
        self.op_id = op_id
        self.build_input = build_input
        self.source = source

    def describe(self):
        return f"join({self.op_id})"


def _span(profiler, op_id, first, last, busy):
    span = profiler._span(op_id)
    span.first, span.last = first, last
    span.busy["cpu"] = busy
    return span


class TestCriticalPath:
    def test_two_join_plan_matches_hand_computed_chain(self):
        # join2(build=scanC, probe=join1(build=scanA, probe=scanB))
        scan_a, scan_b, scan_c = (
            _FakeScan("scanA"), _FakeScan("scanB"), _FakeScan("scanC"))
        join1 = _FakeJoin("join1", scan_a, scan_b)
        join2 = _FakeJoin("join2", scan_c, join1)
        profiler = Profiler()
        _span(profiler, "scanA", 0.0, 2.0, 2.0)
        _span(profiler, "scanB", 2.0, 9.0, 7.0)   # gates join1
        _span(profiler, "scanC", 0.0, 1.0, 1.0)
        _span(profiler, "join1", 1.5, 10.0, 4.0)  # gates join2
        _span(profiler, "join2", 3.0, 12.0, 5.0)
        path = _critical_path(join2, profiler.spans)
        assert [e["op_id"] for e in path] == ["join2", "join1", "scanB"]
        # wait = how long the op sat behind its gating input.
        assert path[0]["wait_for_input"] == pytest.approx(10.0 - 3.0)
        assert path[1]["wait_for_input"] == pytest.approx(9.0 - 1.5)
        assert path[2]["wait_for_input"] == 0.0

    def test_end_to_end_two_join_query_produces_full_chain(self):
        machine = _machine()
        result = run_stored(
            machine,
            lambda into: join_cselaselb("A", "B", "C", N, key=False,
                                        into=into),
            profile=True,
        )
        path = result.profile.critical_path
        assert len(path) >= 3  # root join -> inner join -> a scan
        ops_on_path = [e["op_id"] for e in path]
        assert len(ops_on_path) == len(set(ops_on_path))


class TestExplainAnalyze:
    def test_render_snapshot_structure(self):
        result = _profiled_join()
        text = explain_analyze(result)
        assert text.startswith("EXPLAIN ANALYZE")
        assert f"elapsed={result.response_time:.6f}s" in text
        assert "verdict=" in text
        assert "critical path" in text
        assert "timeline (" in text
        # Annotated tree: exchange kinds, row counts, page counts.
        assert "<-hash-" in text
        assert "rows=" in text and "pages=" in text
        # Critical-path members are starred in the tree.
        assert "\n* " in text or "\n  * " in text

    def test_unprofiled_result_raises(self):
        machine = _machine()
        result = run_stored(
            machine, lambda into: join_abprime("A", "Bp", key=False,
                                               into=into)
        )
        with pytest.raises(ValueError):
            explain_analyze(result)

    def test_profile_json_round_trips(self):
        profile = _profiled_join().profile
        data = json.loads(profile.to_json())
        assert set(data) == {
            "elapsed", "spans", "timeline", "critical_path", "verdict",
            "tree", "plan",
        }
        assert data["elapsed"] == profile.elapsed
        assert data["verdict"] == profile.verdict


class TestPhaseTimeline:
    def test_interval_spread_clips_to_buckets(self):
        # One 2s cpu interval from t=1 to t=3 over a 4s run, 4 buckets.
        intervals = [("op", None, "cpu", "site0", 1.0, 2.0)]
        timeline = PhaseTimeline.from_intervals(
            intervals, elapsed=4.0, class_counts={"cpu": 1}, n_buckets=4
        )
        assert timeline.resource_busy["cpu"] == pytest.approx(
            [0.0, 1.0, 1.0, 0.0]
        )
        assert timeline.utilisation("cpu") == pytest.approx(
            [0.0, 1.0, 1.0, 0.0]
        )
        assert timeline.phase_busy["op"] == pytest.approx(
            [0.0, 1.0, 1.0, 0.0]
        )

    def test_utilisation_normalises_by_class_population(self):
        # Two cpus, one busy: machine-level utilisation is 50%.
        intervals = [("op", "scan", "cpu", "site0", 0.0, 4.0)]
        timeline = PhaseTimeline.from_intervals(
            intervals, elapsed=4.0, class_counts={"cpu": 2}, n_buckets=2
        )
        assert timeline.utilisation("cpu") == pytest.approx([0.5, 0.5])
        assert timeline.phase_busy["op/scan"] == pytest.approx([2.0, 2.0])


class TestVerdict:
    def test_fig05_06_verdict_flips_with_page_size(self):
        """The Fig 5-6 crossover: a 0% selection is disk-bound at 2 KB
        pages and CPU-bound once large pages amortise the seeks."""
        from repro.workloads.queries import selection_query

        verdicts = {}
        for kb in (2, 32):
            machine = build_gamma(
                GammaConfig.paper_default().with_page_size(kb * KB),
                relations=[("rel", N, "heap")],
            )
            result = run_stored(
                machine,
                lambda into: selection_query("rel", N, 0.0, into=into),
                profile=True,
            )
            verdicts[kb] = result.profile.verdict
        assert verdicts[2] == "disk-bound"
        assert verdicts[32] == "cpu-bound"


class TestCounterTracks:
    def test_traced_overflow_join_emits_counter_events(self):
        machine = _machine(with_join_memory=96 * KB)
        trace = TraceBuffer()
        result = run_stored(
            machine,
            lambda into: join_abprime("A", "Bp", key=True,
                                      mode=JoinMode.REMOTE, into=into),
            trace=trace,
        )
        assert result.max_overflows > 0
        events = json.loads(trace.to_json())["traceEvents"]
        counters = [e for e in events if e.get("ph") == "C"]
        names = {e["name"] for e in counters}
        assert "hash-table" in names
        assert any(n.startswith("queue:") for n in names)
        hash_points = [e["args"] for e in counters
                       if e["name"] == "hash-table"]
        assert any(p["bytes"] > 0 for p in hash_points)
        assert any(p["overflows"] > 0 for p in hash_points)
