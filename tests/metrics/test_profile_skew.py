"""The skew verdict must count placed-but-idle nodes, and the profile
must expose per-node utilisation spread as evidence."""

import pytest

from repro.metrics import Profiler
from repro.metrics.profile import QueryProfile


def _proc():
    return object()  # any hashable stands in for a Process


def _loaded_profiler(busy_by_node, placed_nodes):
    """A profiler whose single operator logged ``busy_by_node`` cpu work
    and was placed on ``placed_nodes``."""
    profiler = Profiler()
    for node in placed_nodes:
        profiler.register(_proc(), "join1", "probe", node=node)
    span = profiler._span("join1")
    t = 0.0
    for node, busy in busy_by_node.items():
        span.busy["cpu"] = span.busy.get("cpu", 0.0) + busy
        span.by_node[node] = busy
        profiler.intervals.append(("join1", "probe", "cpu", node, t, busy))
        t += busy
    return profiler


class TestSkewVerdict:
    def test_zero_work_nodes_drag_the_mean_down(self):
        """Three placed nodes, one did all the work: max/mean = 3 > 2.
        Before the fix the two idle nodes were invisible (a single-node
        sample can never look skewed)."""
        profiler = _loaded_profiler(
            {"site0": 6.0}, ["site0", "site1", "site2"]
        )
        verdict = profiler._classify(
            {"cpu": 1.0, "disk": 0.0, "net": 0.0},
            profiler.spans, profiler.intervals,
        )
        assert verdict == "skew"

    def test_without_placements_single_worker_is_not_skew(self):
        profiler = _loaded_profiler({"site0": 6.0}, [])
        verdict = profiler._classify(
            {"cpu": 1.0, "disk": 0.0, "net": 0.0},
            profiler.spans, profiler.intervals,
        )
        assert verdict == "cpu-bound"

    def test_balanced_work_is_not_skew(self):
        profiler = _loaded_profiler(
            {"site0": 2.0, "site1": 2.0, "site2": 2.0},
            ["site0", "site1", "site2"],
        )
        verdict = profiler._classify(
            {"cpu": 1.0, "disk": 0.0, "net": 0.0},
            profiler.spans, profiler.intervals,
        )
        assert verdict == "cpu-bound"

    def test_finish_exports_placements(self):
        profiler = _loaded_profiler(
            {"site0": 1.0}, ["site0", "site1"]
        )
        profile = profiler.finish(None, elapsed=1.0)
        assert profile.placements["join1"] == ("site0", "site1")


class TestUtilisationSpread:
    def _profile(self, by_node, placed):
        profiler = _loaded_profiler(by_node, placed)
        return profiler.finish(None, elapsed=sum(by_node.values()) or 1.0)

    def test_spread_counts_idle_placed_nodes(self):
        profile = self._profile(
            {"site0": 6.0}, ["site0", "site1", "site2"]
        )
        assert profile.node_busy("join1") == {
            "site0": 6.0, "site1": 0.0, "site2": 0.0,
        }
        assert profile.utilisation_spread("join1") == pytest.approx(3.0)

    def test_perfect_balance_is_one(self):
        profile = self._profile(
            {"site0": 2.0, "site1": 2.0}, ["site0", "site1"]
        )
        assert profile.utilisation_spread("join1") == pytest.approx(1.0)

    def test_unknown_operator_defaults_to_one(self):
        profile = QueryProfile(
            elapsed=1.0, spans={}, timeline=None, critical_path=[],
            verdict="cpu-bound", tree=None,
        )
        assert profile.utilisation_spread("nope") == 1.0
