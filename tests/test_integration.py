"""End-to-end integration: the paper's whole workload on one machine pair.

A miniature version of the full evaluation — every query family from
Sections 5-7 executed back-to-back against the same catalog, verifying
that state composes correctly across queries (result relations, updates
mutating indexed relations, subsequent queries seeing the mutations).
"""

import pytest

from repro import (
    AppendTuple,
    DeleteTuple,
    ExactMatch,
    GammaConfig,
    GammaMachine,
    JoinMode,
    ModifyTuple,
    Query,
    RangePredicate,
)
from repro.engine import JoinNode, ScanNode
from repro.workloads import generate_tuples


@pytest.fixture(scope="module")
def machine():
    m = GammaMachine(GammaConfig(n_disk_sites=4, n_diskless=4))
    m.load_wisconsin("big", 4_000, seed=101,
                     clustered_on="unique1", secondary_on=["unique2"])
    m.load_wisconsin("bigheap", 4_000, seed=101)
    m.load_wisconsin("other", 4_000, seed=102)
    m.load_wisconsin("tenth", 400, seed=103)
    return m


def test_full_workload_sequence(machine):
    m = machine

    # --- Section 5: selections -----------------------------------------
    sel = m.run(Query.select("big", RangePredicate("unique1", 0, 39),
                             into="w_sel"))
    assert sel.result_count == 40

    scan = m.run(Query.select("bigheap", RangePredicate("unique2", 0, 399),
                              into="w_scan"))
    assert scan.result_count == 400

    single = m.run(Query.select("big", ExactMatch("unique1", 123)))
    assert single.tuples[0][0] == 123

    # --- Section 6: joins, including a query over a stored result ------
    join = m.run(Query.join(ScanNode("tenth"), ScanNode("bigheap"),
                            on=("unique2", "unique2"), into="w_join"))
    assert join.result_count == 400

    # Query the stored join result: result relations are first-class.
    requery = m.run(Query.select("w_join", RangePredicate("unique2", 0, 99)))
    assert requery.result_count == 100

    three_way = m.run(
        Query.join(
            ScanNode("tenth"),
            JoinNode(
                ScanNode("other", RangePredicate("unique2", 0, 399)),
                ScanNode("bigheap", RangePredicate("unique2", 0, 399)),
                "unique2", "unique2",
            ),
            on=("unique2", "unique2"),
            mode=JoinMode.ALLNODES,
            into="w_3way",
        )
    )
    assert three_way.result_count == 400

    # --- Section 7: updates against the indexed relation ---------------
    fresh = (90_000, 90_000) + next(iter(generate_tuples(1, seed=9)))[2:]
    assert m.update(AppendTuple("big", fresh)).result_count == 1
    assert m.run(Query.select("big", ExactMatch("unique2", 90_000))
                 ).result_count == 1

    assert m.update(
        ModifyTuple("big", ExactMatch("unique1", 90_000), "unique2", 91_000)
    ).result_count == 1
    assert m.run(Query.select("big", ExactMatch("unique2", 91_000))
                 ).result_count == 1

    assert m.update(
        DeleteTuple("big", ExactMatch("unique1", 90_000))
    ).result_count == 1
    assert m.run(Query.select("big", ExactMatch("unique1", 90_000))
                 ).result_count == 0

    # --- aggregates over the mutated relation --------------------------
    count = m.run(Query.aggregate("big", op="count"))
    assert count.tuples == [(4_000,)]

    grouped = m.run(Query.aggregate("big", op="count", group_by="two"))
    assert sorted(grouped.tuples) == [(0, 2000), (1, 2000)]

    # --- cleanup: dropping results keeps the catalog tidy ---------------
    for name in ("w_sel", "w_scan", "w_join", "w_3way"):
        m.drop_relation(name)
    assert len(m.catalog) == 4


def test_every_query_reports_timing_and_stats(machine):
    result = machine.run(
        Query.select("bigheap", RangePredicate("unique2", 0, 39))
    )
    assert result.response_time > 0
    assert result.stats["sched_messages"] > 0
    assert result.stats["packets_received"] >= 1
    assert result.utilisations


def test_workload_deterministic_across_machines():
    def run_once():
        m = GammaMachine(GammaConfig(n_disk_sites=4, n_diskless=4))
        m.load_wisconsin("r", 2_000, seed=55)
        m.load_wisconsin("s", 200, seed=56)
        a = m.run(Query.select("r", RangePredicate("unique2", 0, 99),
                               into="t1"))
        b = m.run(Query.join(ScanNode("s"), ScanNode("r"),
                             on=("unique2", "unique2"), into="t2"))
        return a.response_time, b.response_time

    assert run_once() == run_once()
