"""Tests for heap files."""

import pytest

from repro.errors import RecordNotFoundError
from repro.storage import HeapFile, RID, Schema, build_heap_file, expected_pages, int_attr


def schema2():
    return Schema([int_attr("a"), int_attr("b")])


class TestHeapFile:
    def test_append_returns_stable_rids(self):
        hf = HeapFile("f", schema2(), 4096)
        rids = [hf.append((i, i * 2)) for i in range(10)]
        for i, rid in enumerate(rids):
            assert hf.fetch(rid) == (i, i * 2)

    def test_pages_fill_before_new_page(self):
        schema = schema2()
        per_page = (4096 - 32) // (schema.tuple_bytes + 30)
        hf = build_heap_file("f", schema, 4096, [(i, i) for i in range(per_page + 1)])
        assert hf.num_pages == 2
        assert hf.pages[0].num_records == per_page
        assert hf.pages[1].num_records == 1

    def test_expected_pages_helper_matches_reality(self):
        schema = schema2()
        n = 500
        hf = build_heap_file("f", schema, 4096, [(i, i) for i in range(n)])
        assert hf.num_pages == expected_pages(n, schema, 4096)

    def test_expected_pages_zero_records(self):
        assert expected_pages(0, schema2(), 4096) == 0

    def test_records_iterates_everything_in_order(self):
        hf = build_heap_file("f", schema2(), 4096, [(i, 0) for i in range(100)])
        assert [r[0] for r in hf.records()] == list(range(100))

    def test_delete_and_count(self):
        hf = build_heap_file("f", schema2(), 4096, [(i, 0) for i in range(10)])
        rid, _rec = hf.find_first(lambda r: r[0] == 5)
        deleted = hf.delete(rid)
        assert deleted == (5, 0)
        assert hf.num_records == 9
        assert all(r[0] != 5 for r in hf.records())

    def test_fetch_bad_page_raises(self):
        hf = HeapFile("f", schema2(), 4096)
        with pytest.raises(RecordNotFoundError):
            hf.fetch(RID(99, 0))

    def test_replace(self):
        hf = build_heap_file("f", schema2(), 4096, [(1, 1)])
        rid, _ = hf.find_first(lambda r: True)
        hf.replace(rid, (1, 99))
        assert hf.fetch(rid) == (1, 99)

    def test_insert_with_space_reuse_prefers_hole(self):
        schema = schema2()
        per_page = (4096 - 32) // (schema.tuple_bytes + 30)
        hf = build_heap_file(
            "f", schema, 4096, [(i, 0) for i in range(per_page * 2)]
        )
        rid, _ = hf.find_first(lambda r: r[0] == 0)
        hf.delete(rid)
        new_rid = hf.insert_with_space_reuse((999, 0))
        assert new_rid.page_no == 0
        assert hf.fetch(new_rid) == (999, 0)

    def test_find_first_no_match_raises(self):
        hf = build_heap_file("f", schema2(), 4096, [(1, 1)])
        with pytest.raises(RecordNotFoundError):
            hf.find_first(lambda r: False)

    def test_scan_pages_range(self):
        hf = build_heap_file("f", schema2(), 4096, [(i, 0) for i in range(300)])
        pages = list(hf.scan_pages(start_page=1, end_page=3))
        assert [p[0] for p in pages] == [1, 2]

    def test_rids_roundtrip(self):
        hf = build_heap_file("f", schema2(), 4096, [(i, 0) for i in range(50)])
        for rid, record in hf.rids():
            assert hf.fetch(rid) == record
