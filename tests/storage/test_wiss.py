"""Tests for the StoredFile facade (WiSS)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage import Schema, StoredFile, int_attr


def schema():
    return Schema([int_attr("key"), int_attr("other"), int_attr("payload")])


def records(n, shuffle_seed=None):
    recs = [(i, (i * 7919) % n, i * 10) for i in range(n)]
    if shuffle_seed is not None:
        import random

        random.Random(shuffle_seed).shuffle(recs)
    return recs


class TestCreate:
    def test_heap_preserves_input_order(self):
        recs = records(100, shuffle_seed=1)
        sf = StoredFile.create("r", schema(), 4096, recs)
        assert list(sf.records()) == recs

    def test_clustered_sorts_by_key(self):
        sf = StoredFile.create(
            "r", schema(), 4096, records(100, shuffle_seed=1), clustered_on="key"
        )
        keys = [r[0] for r in sf.records()]
        assert keys == sorted(keys)

    def test_clustered_index_is_sparse(self):
        sf = StoredFile.create(
            "r", schema(), 4096, records(1000), clustered_on="key"
        )
        # One index entry per data page, far fewer than records.
        assert sf.clustered_index.size == sf.num_pages

    def test_secondary_index_is_dense(self):
        sf = StoredFile.create("r", schema(), 4096, records(500))
        sf.add_secondary_index("other")
        assert sf.secondary["other"].size == 500

    def test_duplicate_secondary_rejected(self):
        sf = StoredFile.create("r", schema(), 4096, records(10))
        sf.add_secondary_index("other")
        with pytest.raises(StorageError):
            sf.add_secondary_index("other")

    def test_has_index_on(self):
        sf = StoredFile.create("r", schema(), 4096, records(10), clustered_on="key")
        sf.add_secondary_index("other")
        assert sf.has_index_on("key")
        assert sf.has_index_on("other")
        assert not sf.has_index_on("payload")


class TestScans:
    def test_full_scan_sees_everything(self):
        sf = StoredFile.create("r", schema(), 4096, records(300))
        seen = [r for _pg, recs in sf.scan_pages() for r in recs]
        assert len(seen) == 300

    def test_clustered_scan_returns_only_range(self):
        sf = StoredFile.create(
            "r", schema(), 4096, records(1000), clustered_on="key"
        )
        _descent, pages = sf.clustered_scan(100, 199)
        got = sorted(r[0] for _pg, recs in pages for r in recs)
        assert got == list(range(100, 200))

    def test_clustered_scan_reads_fraction_of_pages(self):
        sf = StoredFile.create(
            "r", schema(), 4096, records(10_000), clustered_on="key"
        )
        _descent, pages = sf.clustered_scan(0, 99)  # 1% of keys
        touched = [pg for pg, _recs in pages]
        assert len(touched) < sf.num_pages / 10

    def test_clustered_scan_descent_length_is_tree_height(self):
        sf = StoredFile.create(
            "r", schema(), 4096, records(10_000), clustered_on="key"
        )
        descent, _pages = sf.clustered_scan(5000, 5100)
        assert len(descent) == sf.clustered_index.height

    def test_secondary_range_yields_rids(self):
        sf = StoredFile.create("r", schema(), 4096, records(1000))
        sf.add_secondary_index("other")
        _descent, entries = sf.secondary_range("other", 0, 49)
        fetched = [sf.fetch(rid) for _pg, _k, rid in entries]
        assert sorted(r[1] for r in fetched) == list(range(50))

    def test_secondary_range_missing_index_raises(self):
        sf = StoredFile.create("r", schema(), 4096, records(10))
        with pytest.raises(StorageError):
            sf.secondary_range("payload", 0, 1)

    def test_exact_match_clustered(self):
        sf = StoredFile.create(
            "r", schema(), 4096, records(1000), clustered_on="key"
        )
        accesses, hit = sf.exact_match_clustered(123)
        assert hit is not None
        _rid, record = hit
        assert record[0] == 123
        assert len(accesses) >= 2  # index descent + data page

    def test_exact_match_clustered_miss(self):
        sf = StoredFile.create(
            "r", schema(), 4096, records(100), clustered_on="key"
        )
        _accesses, hit = sf.exact_match_clustered(100000)
        assert hit is None

    def test_exact_match_secondary(self):
        sf = StoredFile.create("r", schema(), 4096, records(1000))
        sf.add_secondary_index("other")
        _accesses, hit = sf.exact_match_secondary("other", 7919 % 1000)
        assert hit is not None
        assert hit[1][1] == 7919 % 1000


class TestUpdates:
    def test_append_heap(self):
        sf = StoredFile.create("r", schema(), 4096, records(10))
        rid, accesses = sf.append((999, 999, 0))
        assert sf.fetch(rid) == (999, 999, 0)
        assert any(a.write for a in accesses)
        assert sf.num_records == 11

    def test_append_maintains_secondary(self):
        sf = StoredFile.create("r", schema(), 4096, records(10))
        sf.add_secondary_index("other")
        sf.append((999, 12345, 0))
        _descent, entries = sf.secondary_range("other", 12345, 12345)
        assert len(list(entries)) == 1
        assert sf.deferred_update_entries == 1

    def test_append_clustered_keeps_order(self):
        sf = StoredFile.create(
            "r", schema(), 4096, [(i * 2, 0, 0) for i in range(200)],
            clustered_on="key",
        )
        sf.append((101, 0, 0))  # odd key goes between 100 and 102
        keys = [r[0] for r in sf.records()]
        # Physical order within pages may interleave after splits, but a
        # clustered range scan must still return exactly the right records.
        assert 101 in keys
        _d, pages = sf.clustered_scan(100, 102)
        got = sorted(r[0] for _pg, recs in pages for r in recs)
        assert got == [100, 101, 102]

    def test_append_clustered_full_page_splits(self):
        sf = StoredFile.create(
            "r", schema(), 2048, [(i, 0, 0) for i in range(500)],
            clustered_on="key",
        )
        pages_before = sf.num_pages
        # Every page is packed, so an insert in the middle must split.
        sf.append((250, 1, 1))
        assert sf.num_pages == pages_before + 1
        _d, pages = sf.clustered_scan(250, 250)
        got = [r for _pg, recs in pages for r in recs]
        assert len(got) == 2  # the original 250 and the new one

    def test_split_fixes_secondary_index(self):
        sf = StoredFile.create(
            "r", schema(), 2048,
            [(i, i + 10_000, 0) for i in range(500)], clustered_on="key",
        )
        sf.add_secondary_index("other")
        sf.append((250, 99_999, 1))
        # After the split every secondary entry must still resolve.
        for key, rid in sf.secondary["other"].items():
            assert sf.fetch(rid)[1] == key

    def test_delete_record(self):
        sf = StoredFile.create("r", schema(), 4096, records(100))
        sf.add_secondary_index("other")
        rid, rec = sf.heap.find_first(lambda r: r[0] == 42)
        deleted, accesses = sf.delete_record(rid)
        assert deleted == rec
        assert sf.num_records == 99
        assert all(r[0] != 42 for r in sf.records())
        _d, entries = sf.secondary_range("other", rec[1], rec[1])
        assert list(entries) == []

    def test_replace_record_in_place(self):
        sf = StoredFile.create("r", schema(), 4096, records(100))
        rid, rec = sf.heap.find_first(lambda r: r[0] == 10)
        old, _acc = sf.replace_record(rid, (10, rec[1], 777))
        assert old == rec
        assert sf.fetch(rid) == (10, rec[1], 777)

    def test_replace_record_updates_changed_index(self):
        sf = StoredFile.create("r", schema(), 4096, records(100))
        sf.add_secondary_index("other")
        rid, rec = sf.heap.find_first(lambda r: r[0] == 10)
        sf.replace_record(rid, (10, 88_888, rec[2]))
        _d, entries = sf.secondary_range("other", 88_888, 88_888)
        assert [sf.fetch(r) for _pg, _k, r in entries] == [(10, 88_888, rec[2])]

    def test_clustered_index_property_missing_raises(self):
        sf = StoredFile.create("r", schema(), 4096, records(5))
        with pytest.raises(StorageError):
            sf.clustered_index


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=300),
    low=st.integers(min_value=0, max_value=300),
    span=st.integers(min_value=0, max_value=100),
)
def test_property_clustered_scan_equals_filter(n, low, span):
    sf = StoredFile.create(
        "r", schema(), 2048, records(n, shuffle_seed=7), clustered_on="key"
    )
    high = low + span
    _d, pages = sf.clustered_scan(low, high)
    got = sorted(r[0] for _pg, recs in pages for r in recs)
    assert got == [k for k in range(n) if low <= k <= high]


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=200))
def test_property_secondary_index_complete(n):
    sf = StoredFile.create("r", schema(), 2048, records(n, shuffle_seed=3))
    sf.add_secondary_index("other")
    index_keys = sorted(k for k, _rid in sf.secondary["other"].items())
    data_keys = sorted(r[1] for r in sf.records())
    assert index_keys == data_keys
