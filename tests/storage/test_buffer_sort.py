"""Tests for the buffer pool and external sort accounting."""

import pytest

from repro.errors import StorageError
from repro.storage import BufferPool, external_sort


class TestBufferPool:
    def test_first_access_misses_second_hits(self):
        pool = BufferPool("bp", 10)
        assert pool.access("f", 0) is False
        assert pool.access("f", 0) is True
        assert pool.hits == 1
        assert pool.misses == 1

    def test_lru_eviction_order(self):
        pool = BufferPool("bp", 2)
        pool.access("f", 0)
        pool.access("f", 1)
        pool.access("f", 0)  # page 0 now most recent
        pool.access("f", 2)  # evicts page 1
        assert pool.contains("f", 0)
        assert not pool.contains("f", 1)
        assert pool.contains("f", 2)

    def test_capacity_never_exceeded(self):
        pool = BufferPool("bp", 3)
        for i in range(100):
            pool.access("f", i)
        assert len(pool) == 3

    def test_distinct_files_distinct_pages(self):
        pool = BufferPool("bp", 10)
        pool.access("f", 0)
        assert pool.access("g", 0) is False

    def test_invalidate_file(self):
        pool = BufferPool("bp", 10)
        pool.access("f", 0)
        pool.access("f", 1)
        pool.access("g", 0)
        assert pool.invalidate_file("f") == 2
        assert pool.contains("g", 0)

    def test_hit_ratio(self):
        pool = BufferPool("bp", 10)
        pool.access("f", 0)
        pool.access("f", 0)
        pool.access("f", 0)
        assert pool.hit_ratio == pytest.approx(2 / 3)

    def test_zero_capacity_rejected(self):
        with pytest.raises(StorageError):
            BufferPool("bp", 0)


class TestExternalSort:
    def test_sorts_correctly(self):
        records = [(i % 7, i) for i in range(100)]
        out, _stats = external_sort(
            records, key=lambda r: r[0], record_bytes=8,
            page_size=4096, memory_bytes=1 << 20,
        )
        assert [r[0] for r in out] == sorted(r[0] for r in records)

    def test_in_memory_sort_reads_and_writes_once(self):
        records = [(i,) for i in range(1000)]
        _out, stats = external_sort(
            records, key=lambda r: r[0], record_bytes=100,
            page_size=4096, memory_bytes=10 << 20,
        )
        assert stats.merge_passes == 0
        assert stats.pages_read == stats.n_pages
        assert stats.pages_written == stats.n_pages

    def test_limited_memory_needs_merge_passes(self):
        records = [((i * 37) % 1000, i) for i in range(1000)]
        out, stats = external_sort(
            records, key=lambda r: r[0], record_bytes=200,
            page_size=4096, memory_bytes=4096,  # one page of workspace
        )
        assert [r[0] for r in out] == sorted(r[0] for r in records)
        assert stats.run_count > 1
        assert stats.merge_passes >= 1
        assert stats.pages_read > stats.n_pages

    def test_more_memory_fewer_ios(self):
        records = [((i * 37) % 1000, i) for i in range(2000)]
        _o, tight = external_sort(
            records, key=lambda r: r[0], record_bytes=200,
            page_size=4096, memory_bytes=4096,
        )
        _o, roomy = external_sort(
            records, key=lambda r: r[0], record_bytes=200,
            page_size=4096, memory_bytes=1 << 20,
        )
        assert roomy.total_page_ios < tight.total_page_ios

    def test_empty_input(self):
        out, stats = external_sort(
            [], key=lambda r: r, record_bytes=8,
            page_size=4096, memory_bytes=4096,
        )
        assert out == []
        assert stats.total_page_ios == 0

    def test_invalid_memory_rejected(self):
        with pytest.raises(StorageError):
            external_sort([], key=lambda r: r, record_bytes=8,
                          page_size=4096, memory_bytes=0)

    def test_invalid_fanin_rejected(self):
        with pytest.raises(StorageError):
            external_sort([], key=lambda r: r, record_bytes=8,
                          page_size=4096, memory_bytes=4096, merge_fanin=1)
