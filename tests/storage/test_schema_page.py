"""Tests for schemas and slotted pages."""

import pytest

from repro.errors import PageFullError, RecordNotFoundError, StorageError
from repro.storage import (
    PAGE_HEADER_BYTES,
    Page,
    Schema,
    int_attr,
    records_per_page,
    string_attr,
)


def wisconsin_like_schema():
    ints = [int_attr(f"i{k}") for k in range(13)]
    strings = [string_attr(f"s{k}") for k in range(3)]
    return Schema(ints + strings)


class TestSchema:
    def test_tuple_bytes_matches_wisconsin(self):
        # Thirteen 4-byte integers + three 52-byte strings = 208 bytes.
        assert wisconsin_like_schema().tuple_bytes == 208

    def test_position_and_getter(self):
        schema = Schema([int_attr("a"), int_attr("b")])
        assert schema.position("b") == 1
        get_b = schema.getter("b")
        assert get_b((10, 20)) == 20

    def test_unknown_attribute_raises(self):
        schema = Schema([int_attr("a")])
        with pytest.raises(StorageError):
            schema.position("zzz")

    def test_duplicate_names_rejected(self):
        with pytest.raises(StorageError):
            Schema([int_attr("a"), int_attr("a")])

    def test_empty_schema_rejected(self):
        with pytest.raises(StorageError):
            Schema([])

    def test_project(self):
        schema = Schema([int_attr("a"), int_attr("b"), int_attr("c")])
        proj = schema.project(["c", "a"])
        assert proj.names() == ["c", "a"]
        assert proj.tuple_bytes == 8

    def test_concat_renames_clashes(self):
        left = Schema([int_attr("a"), int_attr("b")])
        right = Schema([int_attr("a"), int_attr("c")])
        joined = left.concat(right)
        assert joined.names() == ["a", "b", "a_r", "c"]
        assert joined.tuple_bytes == 16

    def test_contains(self):
        schema = Schema([int_attr("a")])
        assert "a" in schema
        assert "b" not in schema

    def test_equality_and_hash(self):
        s1 = Schema([int_attr("a")])
        s2 = Schema([int_attr("a")])
        assert s1 == s2
        assert hash(s1) == hash(s2)


class TestRecordsPerPage:
    def test_paper_anchor_17_tuples_per_4kb_page(self):
        # "with 17 tuples per data page" for the 208-byte Wisconsin tuple.
        assert records_per_page(4096, 208) == 17

    def test_2kb_page_holds_8(self):
        assert records_per_page(2048, 208) == 8

    def test_32kb_page_holds_about_150(self):
        # "With 32 Kbyte pages, each page will hold approximately 150 tuples"
        count = records_per_page(32 * 1024, 208)
        assert 130 <= count <= 160

    def test_oversized_record_rejected(self):
        with pytest.raises(StorageError):
            records_per_page(2048, 4096)


class TestPage:
    def test_insert_and_get(self):
        page = Page(4096)
        slot = page.insert((1, 2), 208)
        assert page.get(slot) == (1, 2)
        assert page.num_records == 1

    def test_capacity_enforced_in_bytes(self):
        page = Page(4096)
        inserted = 0
        with pytest.raises(PageFullError):
            while True:
                page.insert((inserted,), 208)
                inserted += 1
        assert inserted == 17

    def test_free_bytes_accounting(self):
        page = Page(4096)
        before = page.free_bytes
        page.insert((1,), 208)
        assert before - page.free_bytes == 208 + 30

    def test_delete_frees_space_and_slot_reused(self):
        page = Page(1024)
        slot = page.insert((1,), 208)
        page.delete(slot, 208)
        assert page.num_records == 0
        slot2 = page.insert((2,), 208)
        assert slot2 == slot

    def test_get_deleted_slot_raises(self):
        page = Page(1024)
        slot = page.insert((1,), 208)
        page.delete(slot, 208)
        with pytest.raises(RecordNotFoundError):
            page.get(slot)

    def test_replace_in_place(self):
        page = Page(1024)
        slot = page.insert((1,), 208)
        old = page.replace(slot, (9,))
        assert old == (1,)
        assert page.get(slot) == (9,)

    def test_records_skips_holes(self):
        page = Page(4096)
        s0 = page.insert((0,), 100)
        page.insert((1,), 100)
        page.delete(s0, 100)
        assert list(page.records()) == [(1,)]

    def test_header_counted(self):
        page = Page(4096)
        assert page.free_bytes == 4096 - PAGE_HEADER_BYTES

    def test_tiny_page_rejected(self):
        with pytest.raises(StorageError):
            Page(16)
