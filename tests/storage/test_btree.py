"""Unit and property tests for the paged B+-tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RecordNotFoundError, StorageError
from repro.storage import BPlusTree, build_dense_index, build_sparse_index


def make_tree(page_size=512, pairs=None):
    tree = BPlusTree("t", page_size)
    if pairs:
        tree.bulk_load(sorted(pairs, key=lambda kp: kp[0]))
    return tree


class TestBulkLoad:
    def test_items_in_order(self):
        tree = make_tree(pairs=[(i, f"p{i}") for i in range(1000)])
        assert [k for k, _ in tree.items()] == list(range(1000))
        assert tree.size == 1000

    def test_unsorted_input_rejected(self):
        tree = BPlusTree("t", 512)
        with pytest.raises(StorageError):
            tree.bulk_load([(2, "a"), (1, "b")])

    def test_bulk_load_twice_rejected(self):
        tree = make_tree(pairs=[(1, "a")])
        with pytest.raises(StorageError):
            tree.bulk_load([(2, "b")])

    def test_empty_load_ok(self):
        tree = BPlusTree("t", 512)
        tree.bulk_load([])
        assert list(tree.items()) == []
        assert tree.height == 1

    def test_height_grows_logarithmically(self):
        small = make_tree(pairs=[(i, i) for i in range(10)])
        big = make_tree(pairs=[(i, i) for i in range(5000)])
        assert small.height <= big.height <= small.height + 4

    def test_bigger_pages_mean_shorter_trees(self):
        pairs = [(i, i) for i in range(20000)]
        short = BPlusTree("t", 8192)
        short.bulk_load(pairs)
        tall = BPlusTree("t", 512)
        tall.bulk_load(pairs)
        assert short.height < tall.height

    def test_invariants_after_bulk_load(self):
        make_tree(pairs=[(i, i) for i in range(3000)]).check_invariants()


class TestSearchAndRange:
    def test_lookup_exact(self):
        tree = make_tree(pairs=[(i, f"p{i}") for i in range(500)])
        assert tree.lookup(250) == ["p250"]
        assert tree.lookup(9999) == []

    def test_search_path_starts_at_root(self):
        tree = make_tree(pairs=[(i, i) for i in range(2000)])
        path = tree.search(1234)
        assert path.page_ids[0] == tree.root.page_id
        assert len(path.page_ids) == tree.height

    def test_range_entries_inclusive(self):
        tree = make_tree(pairs=[(i, i * 10) for i in range(100)])
        got = [(k, p) for _pg, k, p in tree.range_entries(10, 19)]
        assert got == [(k, k * 10) for k in range(10, 20)]

    def test_range_crossing_leaves(self):
        tree = make_tree(page_size=512, pairs=[(i, i) for i in range(1000)])
        got = [k for _pg, k, _p in tree.range_entries(0, 999)]
        assert got == list(range(1000))

    def test_range_empty_when_low_gt_high(self):
        tree = make_tree(pairs=[(i, i) for i in range(10)])
        assert list(tree.range_entries(5, 4)) == []

    def test_range_visits_distinct_leaf_pages(self):
        tree = make_tree(page_size=512, pairs=[(i, i) for i in range(1000)])
        leaf_pages = {pg for pg, _k, _p in tree.range_entries(0, 999)}
        assert len(leaf_pages) > 1

    def test_floor_entry(self):
        tree = make_tree(pairs=[(i * 10, i) for i in range(100)])
        _pg, key, payload = tree.floor_entry(55)
        assert key == 50
        assert payload == 5

    def test_floor_entry_below_min_raises(self):
        tree = make_tree(pairs=[(10, 1)])
        with pytest.raises(RecordNotFoundError):
            tree.floor_entry(5)

    def test_duplicate_keys_all_returned(self):
        tree = make_tree(pairs=[(1, "a"), (1, "b"), (2, "c")])
        assert sorted(tree.lookup(1)) == ["a", "b"]


class TestInsertDelete:
    def test_incremental_inserts_match_bulk(self):
        tree = BPlusTree("t", 512)
        import random

        rng = random.Random(42)
        keys = list(range(2000))
        rng.shuffle(keys)
        for k in keys:
            tree.insert(k, k)
        assert [k for k, _ in tree.items()] == list(range(2000))
        tree.check_invariants()

    def test_insert_returns_touched_pages(self):
        tree = make_tree(pairs=[(i, i) for i in range(100)])
        touched = tree.insert(50, "dup")
        assert touched  # at least the leaf

    def test_delete_removes_one_entry(self):
        tree = make_tree(pairs=[(i, i) for i in range(100)])
        tree.delete(42)
        assert tree.lookup(42) == []
        assert tree.size == 99

    def test_delete_specific_payload(self):
        tree = make_tree(pairs=[(1, "a"), (1, "b")])
        tree.delete(1, payload="a")
        assert tree.lookup(1) == ["b"]

    def test_delete_missing_raises(self):
        tree = make_tree(pairs=[(1, "a")])
        with pytest.raises(RecordNotFoundError):
            tree.delete(99)

    def test_delete_missing_payload_raises(self):
        tree = make_tree(pairs=[(1, "a")])
        with pytest.raises(RecordNotFoundError):
            tree.delete(1, payload="zzz")

    def test_root_split_grows_height(self):
        tree = BPlusTree("t", 512)
        h0 = tree.height
        for i in range(5000):
            tree.insert(i, i)
        assert tree.height > h0
        tree.check_invariants()


class TestBuilders:
    def test_dense_index_sorts_input(self):
        tree = build_dense_index("d", 4096, [(3, "c"), (1, "a"), (2, "b")])
        assert [k for k, _ in tree.items()] == [1, 2, 3]

    def test_sparse_index_floor_semantics(self):
        # Data pages with first keys 0, 100, 200 -> key 150 lives on page 1.
        tree = build_sparse_index("s", 4096, [(0, 0), (100, 1), (200, 2)])
        _pg, _key, page_no = tree.floor_entry(150)
        assert page_no == 1


@settings(max_examples=50, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=10_000), min_size=0, max_size=400),
    page_size=st.sampled_from([512, 1024, 4096]),
)
def test_property_insert_preserves_sorted_order_and_invariants(keys, page_size):
    tree = BPlusTree("t", page_size)
    for k in keys:
        tree.insert(k, k)
    assert [k for k, _ in tree.items()] == sorted(keys)
    tree.check_invariants()


@settings(max_examples=50, deadline=None)
@given(
    keys=st.lists(
        st.integers(min_value=0, max_value=1000), min_size=1, max_size=200, unique=True
    ),
    data=st.data(),
)
def test_property_delete_then_membership(keys, data):
    tree = BPlusTree("t", 512)
    for k in sorted(keys):
        tree.insert(k, k)
    doomed = data.draw(
        st.lists(st.sampled_from(keys), max_size=len(keys), unique=True)
    )
    for k in doomed:
        tree.delete(k)
    survivors = sorted(set(keys) - set(doomed))
    assert [k for k, _ in tree.items()] == survivors
    for k in doomed:
        assert tree.lookup(k) == []


@settings(max_examples=30, deadline=None)
@given(
    keys=st.lists(
        st.integers(min_value=0, max_value=5000), min_size=1, max_size=300, unique=True
    ),
    bounds=st.tuples(
        st.integers(min_value=0, max_value=5000),
        st.integers(min_value=0, max_value=5000),
    ),
)
def test_property_range_matches_filter(keys, bounds):
    low, high = min(bounds), max(bounds)
    tree = BPlusTree("t", 1024)
    tree.bulk_load([(k, k) for k in sorted(keys)])
    got = [k for _pg, k, _p in tree.range_entries(low, high)]
    assert got == sorted(k for k in keys if low <= k <= high)
