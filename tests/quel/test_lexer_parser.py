"""Tests for the QUEL tokenizer and parser."""

import pytest

from repro.quel import QuelSyntaxError, parse, tokenize
from repro.quel.ast import (
    AggTarget,
    Append,
    AttrRef,
    Delete,
    RangeDecl,
    Replace,
    Retrieve,
)


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("RETRIEVE Unique InTo")
        assert [t.value for t in tokens[:-1]] == ["retrieve", "unique", "into"]
        assert all(t.kind == "keyword" for t in tokens[:-1])

    def test_identifiers_keep_case(self):
        tokens = tokenize("TenKtup")
        assert tokens[0].kind == "name"
        assert tokens[0].value == "TenKtup"

    def test_numbers_including_negative(self):
        tokens = tokenize("42 -7")
        assert [(t.kind, t.value) for t in tokens[:-1]] == [
            ("int", "42"), ("int", "-7"),
        ]

    def test_string_literal(self):
        tokens = tokenize('"hello world"')
        assert tokens[0].kind == "string"
        assert tokens[0].value == "hello world"

    def test_unterminated_string_rejected(self):
        with pytest.raises(QuelSyntaxError):
            tokenize('"oops')

    def test_two_char_operators(self):
        tokens = tokenize("a.b <= 5")
        ops = [t for t in tokens if t.kind == "op"]
        assert ops[0].value == "<="

    def test_unexpected_character(self):
        with pytest.raises(QuelSyntaxError):
            tokenize("a @ b")

    def test_end_token_present(self):
        assert tokenize("")[-1].kind == "end"


class TestParser:
    def test_range_decl(self):
        stmt = parse("range of t is tenktup")
        assert stmt == RangeDecl("t", "tenktup")

    def test_retrieve_all(self):
        stmt = parse("retrieve (t.all)")
        assert isinstance(stmt, Retrieve)
        assert stmt.targets == (AttrRef("t", "all"),)
        assert not stmt.unique
        assert stmt.into is None

    def test_retrieve_unique_into(self):
        stmt = parse("retrieve unique into res (t.ten, t.two)")
        assert stmt.unique
        assert stmt.into == "res"
        assert len(stmt.targets) == 2

    def test_where_conjunction(self):
        stmt = parse(
            "retrieve (t.all) where t.unique2 >= 0 and t.unique2 <= 99"
        )
        assert len(stmt.qualification) == 2
        assert stmt.qualification[0].op == ">="

    def test_join_term(self):
        stmt = parse("retrieve (a.all, b.all) where a.unique2 = b.unique2")
        (comparison,) = stmt.qualification
        assert comparison.is_join_term
        assert comparison.right == AttrRef("b", "unique2")

    def test_aggregate_targets(self):
        stmt = parse("retrieve (min(t.unique2))")
        (target,) = stmt.targets
        assert target == AggTarget("min", AttrRef("t", "unique2"))

    def test_grouped_aggregate(self):
        stmt = parse("retrieve (count(t.all by t.ten))")
        (target,) = stmt.targets
        assert target.op == "count"
        assert target.by == AttrRef("t", "ten")

    def test_append(self):
        stmt = parse('append to rel (unique1 = 5, stringu1 = "x")')
        assert stmt == Append("rel", (("unique1", 5), ("stringu1", "x")))

    def test_delete(self):
        stmt = parse("delete t where t.unique1 = 55")
        assert isinstance(stmt, Delete)
        assert stmt.variable == "t"

    def test_replace(self):
        stmt = parse("replace t (odd100 = 7) where t.unique1 = 5")
        assert isinstance(stmt, Replace)
        assert stmt.assignments == (("odd100", 7),)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(QuelSyntaxError):
            parse("retrieve (t.all) extra")

    def test_inequality_rejected(self):
        with pytest.raises(QuelSyntaxError):
            parse("retrieve (t.all) where t.a != 5")

    def test_unknown_statement_rejected(self):
        with pytest.raises(QuelSyntaxError):
            parse("select t.all")

    def test_missing_parenthesis_rejected(self):
        with pytest.raises(QuelSyntaxError):
            parse("retrieve t.all")
