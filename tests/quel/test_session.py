"""End-to-end QUEL session tests: compile + execute against oracles."""

import pytest

from repro import GammaConfig, GammaMachine
from repro.engine.plan import (
    AggregateNode,
    ExactMatch,
    JoinNode,
    ProjectNode,
    RangePredicate,
    ScanNode,
)
from repro.quel import QuelCompileError, QuelSession
from repro.workloads import generate_tuples


@pytest.fixture
def session():
    machine = GammaMachine(GammaConfig(n_disk_sites=4, n_diskless=4))
    machine.load_wisconsin("tenktup", 2_000, seed=61,
                           clustered_on="unique1", secondary_on=["unique2"])
    machine.load_wisconsin("small", 200, seed=62)
    s = QuelSession(machine)
    s.execute("range of t is tenktup")
    s.execute("range of s is small")
    return s


def data(n=2000, seed=61):
    return list(generate_tuples(n, seed=seed))


class TestCompilation:
    def test_range_bounds_merge(self, session):
        q = session.compile(
            "retrieve (t.all) where t.unique2 >= 10 and t.unique2 < 20"
        )
        pred = q.root.predicate
        assert isinstance(pred, RangePredicate)
        assert (pred.low, pred.high) == (10, 19)

    def test_equality_becomes_exact_match(self, session):
        q = session.compile("retrieve (t.all) where t.unique1 = 55")
        assert isinstance(q.root.predicate, ExactMatch)

    def test_contradictory_bounds_give_empty_range(self, session):
        q = session.compile(
            "retrieve (t.all) where t.unique2 = 5 and t.unique2 > 100"
        )
        pred = q.root.predicate
        assert pred.low > pred.high

    def test_projection_node_built(self, session):
        q = session.compile("retrieve (t.unique1, t.ten)")
        assert isinstance(q.root, ProjectNode)
        assert q.root.attrs == ["unique1", "ten"]

    def test_aggregate_node_built(self, session):
        q = session.compile("retrieve (sum(t.unique1 by t.two))")
        assert isinstance(q.root, AggregateNode)
        assert q.root.group_by == "two"

    def test_join_restricted_side_builds(self, session):
        q = session.compile(
            "retrieve (t.all, s.all)"
            " where t.unique2 = s.unique2 and s.unique2 < 50"
        )
        assert isinstance(q.root, JoinNode)
        assert isinstance(q.root.build, ScanNode)
        assert q.root.build.relation == "small"

    def test_undeclared_variable_rejected(self, session):
        with pytest.raises(QuelCompileError):
            session.compile("retrieve (z.all)")

    def test_unknown_attribute_rejected(self, session):
        with pytest.raises(Exception):
            session.execute("retrieve (t.zzz)")

    def test_three_variables_rejected(self, session):
        session.execute("range of u is tenktup")
        with pytest.raises(QuelCompileError):
            session.compile(
                "retrieve (t.all, s.all, u.all)"
                " where t.unique2 = s.unique2 and u.unique1 = 1"
            )

    def test_two_vars_without_join_rejected(self, session):
        with pytest.raises(QuelCompileError):
            session.compile("retrieve (t.all, s.all)")

    def test_multi_attr_restriction_rejected(self, session):
        with pytest.raises(QuelCompileError):
            session.compile(
                "retrieve (t.all) where t.unique1 = 5 and t.unique2 = 7"
            )

    def test_sum_of_all_rejected(self, session):
        with pytest.raises(QuelCompileError):
            session.compile("retrieve (sum(t.all))")

    def test_unique_needs_attribute_list(self, session):
        with pytest.raises(QuelCompileError):
            session.compile("retrieve unique (t.all)")


class TestExecution:
    def test_selection_matches_oracle(self, session):
        r = session.execute(
            "retrieve (t.all) where t.unique2 >= 0 and t.unique2 <= 49"
        )
        expected = sorted(t for t in data() if t[1] <= 49)
        assert sorted(r.tuples) == expected

    def test_projection_values(self, session):
        r = session.execute(
            "retrieve (t.unique2, t.hundred) where t.unique2 < 30"
        )
        expected = sorted((t[1], t[6]) for t in data() if t[1] < 30)
        assert sorted(r.tuples) == expected

    def test_unique_projection(self, session):
        r = session.execute("retrieve unique (t.four)")
        assert sorted(r.tuples) == [(i,) for i in range(4)]

    def test_scalar_aggregate(self, session):
        r = session.execute("retrieve (max(t.unique1))")
        assert r.tuples == [(1999,)]

    def test_grouped_aggregate(self, session):
        r = session.execute("retrieve (count(t.all by t.ten))")
        assert sorted(r.tuples) == [(g, 200) for g in range(10)]

    def test_join_matches_oracle(self, session):
        r = session.execute(
            "retrieve (s.all, t.all) where s.unique2 = t.unique2"
        )
        big = {t[1]: t for t in data()}
        expected = sorted(
            st + big[st[1]] for st in data(200, 62) if st[1] in big
        )
        assert sorted(r.tuples) == expected

    def test_stored_result_queryable(self, session):
        session.execute(
            "retrieve into kept (t.all) where t.unique1 < 100"
        )
        session.execute("range of k is kept")
        r = session.execute("retrieve (count(k.all))")
        assert r.tuples == [(100,)]

    def test_append_then_visible(self, session):
        session.execute("append to tenktup (unique1 = 77777, unique2 = 77777)")
        r = session.execute("retrieve (t.all) where t.unique2 = 77777")
        assert r.result_count == 1

    def test_append_fills_defaults(self, session):
        session.execute("append to tenktup (unique1 = 88888, unique2 = 88888)")
        r = session.execute("retrieve (t.all) where t.unique1 = 88888")
        record = r.tuples[0]
        assert record[2] == 0  # 'two' defaulted
        assert record[13] == ""  # stringu1 defaulted

    def test_replace_and_delete(self, session):
        session.execute("replace t (odd100 = 3) where t.unique1 = 10")
        r = session.execute("retrieve (t.odd100) where t.unique1 = 10")
        assert r.tuples == [(3,)]
        session.execute("delete t where t.unique1 = 10")
        r = session.execute("retrieve (t.all) where t.unique1 = 10")
        assert r.result_count == 0

    def test_range_redeclaration_rebinds(self, session):
        session.execute("range of t is small")
        r = session.execute("retrieve (count(t.all))")
        assert r.tuples == [(200,)]

    def test_delete_needs_exact_predicate(self, session):
        with pytest.raises(QuelCompileError):
            session.execute("delete t where t.unique1 < 100")
