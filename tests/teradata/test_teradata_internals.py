"""Unit tests for the DBC/1012 internals: dense hash index, fragments,
merge join, and the executor's cost structure."""

import pytest

from repro.catalog import gamma_hash
from repro.engine import Query, RangePredicate
from repro.storage import Schema, int_attr
from repro.teradata import DenseHashIndex, TeradataMachine
from repro.teradata.amp import AmpFragment
from repro.teradata.executor import _merge_join
from repro.hardware import TeradataConfig


def schema():
    return Schema([int_attr("key"), int_attr("other")])


class TestDenseHashIndex:
    def test_entries_in_hash_order_not_key_order(self):
        index = DenseHashIndex("i", "other", 4096)
        index.build(list(range(100)))
        values = [v for v, _i in index.entries]
        assert sorted(values) == list(range(100))
        assert values != sorted(values)  # hashed, NOT key sorted

    def test_matching_scans_whole_range(self):
        index = DenseHashIndex("i", "other", 4096)
        index.build([v * 2 for v in range(50)])
        assert sorted(index.matching(10, 20)) == sorted(
            i for i in range(50) if 10 <= i * 2 <= 20
        )

    def test_exact(self):
        index = DenseHashIndex("i", "other", 4096)
        index.build([5, 7, 5])
        assert sorted(index.exact(5)) == [0, 2]

    def test_num_pages_from_entry_width(self):
        index = DenseHashIndex("i", "other", 4096)
        index.build(list(range(1000)))
        per_page = (4096 - 32) // (16 + 30)
        assert index.num_pages == -(-1000 // per_page)


class TestAmpFragment:
    def _fragment(self, n=100):
        records = [(i, n - i) for i in range(n)]
        return AmpFragment("f", schema(), "key", 4096, records)

    def test_records_stored_in_hash_key_order(self):
        frag = self._fragment()
        hashes = [gamma_hash(r[0], 1 << 30) for r in frag.records]
        assert hashes == sorted(hashes)

    def test_append_maintains_indexes(self):
        frag = self._fragment()
        frag.add_index("other")
        frag.append((999, 12345))
        assert 12345 in [v for v, _ in frag.indexes["other"].entries]

    def test_remove_clears_index_entries(self):
        frag = self._fragment()
        frag.add_index("other")
        target = frag.records[3]
        frag.remove(3)
        assert 3 not in [i for _v, i in frag.indexes["other"].entries]
        assert target not in list(frag.live_records())

    def test_replace_updates_changed_index(self):
        frag = self._fragment()
        frag.add_index("other")
        old = frag.records[5]
        frag.replace(5, (old[0], 77_777))
        entries = dict(
            (i, v) for v, i in frag.indexes["other"].entries
        )
        assert entries[5] == 77_777

    def test_page_of_ordinal(self):
        frag = self._fragment(1000)
        per_page = frag.heap.records_per_full_page
        assert frag.page_of_ordinal(0) == 0
        assert frag.page_of_ordinal(per_page) == 1


class TestMergeJoin:
    def test_basic_equi_join(self):
        left = sorted([(k,) for k in [1, 2, 2, 5]])
        right = sorted([(k, "r") for k in [2, 3, 5, 5]])
        out = _merge_join(left, right, 0, 0)
        assert sorted(out) == sorted([
            (2, 2, "r"), (2, 2, "r"), (5, 5, "r"), (5, 5, "r"),
        ])

    def test_duplicate_runs_cross_product(self):
        left = [(1,), (1,)]
        right = [(1, "a"), (1, "b")]
        assert len(_merge_join(left, right, 0, 0)) == 4

    def test_disjoint_inputs(self):
        assert _merge_join([(1,)], [(2, "x")], 0, 0) == []

    def test_empty_sides(self):
        assert _merge_join([], [(1, "x")], 0, 0) == []
        assert _merge_join([(1,)], [], 0, 0) == []


class TestExecutorCostStructure:
    def test_more_amps_scan_faster(self):
        times = {}
        for amps in (5, 20):
            m = TeradataMachine(TeradataConfig(n_amps=amps))
            m.load_wisconsin("r", 10_000, seed=1)
            times[amps] = m.run(
                Query.select("r", RangePredicate("hundred", 0, 0))
            ).response_time
        assert times[20] < times[5]

    def test_fixed_host_cost_dominates_tiny_queries(self):
        m = TeradataMachine()
        m.load_wisconsin("r", 1_000, seed=1)
        r = m.run(Query.select("r", RangePredicate("hundred", -5, -1)))
        assert r.response_time > m.costs.host_roundtrip_s

    def test_insert_path_charges_three_ios_per_tuple(self):
        m = TeradataMachine(TeradataConfig(n_amps=2))
        m.load_wisconsin("r", 1_000, seed=1)
        result = m.run(
            Query.select("r", RangePredicate("unique1", 0, 99), into="out")
        )
        assert result.stats["insert_ios"] == pytest.approx(
            100 * m.config.insert_ios_per_tuple, abs=2
        )

    def test_redistribution_stats(self):
        from repro.engine import ScanNode

        m = TeradataMachine(TeradataConfig(n_amps=4))
        m.load_wisconsin("A", 1_000, seed=1)
        m.load_wisconsin("B", 100, seed=2)
        nonkey = m.run(Query.join(ScanNode("B"), ScanNode("A"),
                                  on=("unique2", "unique2"), into="j1"))
        assert nonkey.stats["tuples_redistributed"] == 1100
        key = m.run(Query.join(ScanNode("B"), ScanNode("A"),
                               on=("unique1", "unique1"), into="j2"))
        assert key.stats.get("tuples_redistributed", 0) == 0
