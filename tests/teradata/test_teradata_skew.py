"""Skew-aware spool redistribution on the DBC/1012 model."""

import pytest

from repro import TeradataConfig
from repro.engine.ir import ExchangeKind
from repro.engine.skew import SKEW_STRATEGIES
from repro.errors import PlanError
from repro.teradata import TeradataMachine
from repro.workloads import (
    generate_hot_key_tuples,
    generate_tuples,
    wisconsin_schema,
)
from repro.workloads.queries import join_abprime


def _machine(strategy="hash", n=2_000):
    machine = TeradataMachine(
        TeradataConfig(n_amps=5), skew_strategy=strategy
    )
    machine.load_relation(
        "probe", wisconsin_schema(),
        list(generate_hot_key_tuples(
            n, seed=5, hot_fraction=0.6, domain=n // 10,
        )),
        primary_key="unique1",
    )
    machine.load_relation(
        "build", wisconsin_schema(),
        list(generate_tuples(n // 10, seed=6)),
        primary_key="unique1",
    )
    return machine


class TestTeradataSkew:
    def test_unknown_strategy_rejected(self):
        machine = _machine()
        machine.skew_strategy = "zipfian"
        with pytest.raises(PlanError, match="unknown skew_strategy"):
            machine._planner()

    def test_all_strategies_agree_on_the_join_answer(self):
        counts = {}
        for strategy in SKEW_STRATEGIES:
            result = _machine(strategy).run(
                join_abprime("probe", "build", key=False, into="out")
            )
            counts[strategy] = result.result_count
        assert len(set(counts.values())) == 1, counts

    def test_hot_broadcast_exchanges_reach_the_plan(self):
        machine = _machine("hot-broadcast")
        ir = machine._planner().plan(
            join_abprime("probe", "build", key=False, into="out")
        )
        node = ir.root
        while not hasattr(node, "left_exchange"):
            node = node.source
        assert node.left_exchange.kind is ExchangeKind.HOT_BROADCAST
        assert node.right_exchange.kind is ExchangeKind.HOT_SPRAY

    def test_primary_key_join_keeps_the_local_shortcut(self):
        """A LOCAL side pins the join to plain hashing — the stored
        fragments are already hash-partitioned, so any other split of
        the shipped side would misalign the merge."""
        machine = _machine("vhash")
        ir = machine._planner().plan(
            join_abprime("probe", "build", key=True, into="out")
        )
        node = ir.root
        while not hasattr(node, "left_exchange"):
            node = node.source
        kinds = {node.left_exchange.kind, node.right_exchange.kind}
        assert ExchangeKind.VHASH not in kinds
        assert ExchangeKind.LOCAL in kinds
