"""Tests for the Teradata DBC/1012 baseline model."""

import pytest

from repro import (
    AppendTuple,
    DeleteTuple,
    ExactMatch,
    ModifyTuple,
    Query,
    RangePredicate,
    TeradataConfig,
)
from repro.catalog import gamma_hash
from repro.engine import JoinNode, ScanNode
from repro.errors import CatalogError
from repro.teradata import TeradataMachine, hash_key_order
from repro.workloads import generate_tuples


@pytest.fixture
def machine():
    m = TeradataMachine(TeradataConfig(n_amps=5))
    m.load_wisconsin("twok", 2_000, seed=11, secondary_on=["unique2"])
    return m


def data(n=2000, seed=11):
    return list(generate_tuples(n, seed=seed))


class TestLoading:
    def test_partitioned_by_key_hash(self, machine):
        rel = machine.lookup("twok")
        assert rel.num_records == 2000
        for i, frag in enumerate(rel.fragments):
            for record in frag.live_records():
                assert gamma_hash(record[0], 5) == i

    def test_fragments_in_hash_key_order(self, machine):
        rel = machine.lookup("twok")
        frag = rel.fragments[0]
        hashes = [gamma_hash(r[0], 1 << 30) for r in frag.live_records()]
        assert hashes == sorted(hashes)

    def test_hash_key_order_helper(self):
        records = [(i,) for i in range(100)]
        ordered = hash_key_order(records, 0)
        assert sorted(ordered) == records
        assert ordered != records  # hash order, not key order

    def test_secondary_index_is_dense(self, machine):
        rel = machine.lookup("twok")
        assert sum(len(f.indexes["unique2"].entries) for f in rel.fragments) == 2000

    def test_duplicate_relation_rejected(self, machine):
        with pytest.raises(CatalogError):
            machine.load_wisconsin("twok", 100)

    def test_unknown_relation_rejected(self, machine):
        with pytest.raises(CatalogError):
            machine.lookup("ghost")


class TestSelections:
    def test_scan_correctness(self, machine):
        r = machine.run(Query.select("twok", RangePredicate("hundred", 0, 0)))
        expected = sorted(t for t in data() if t[6] == 0)
        assert sorted(r.tuples) == expected

    def test_index_selection_correctness(self, machine):
        r = machine.run(Query.select("twok", RangePredicate("unique2", 0, 19)))
        assert sorted(t[1] for t in r.tuples) == list(range(20))
        assert "nonclustered-index" in r.plan

    def test_ten_percent_prefers_scan(self, machine):
        # "In the case of the 10% selection, the optimizer decided
        # (correctly) not to use the index."
        r = machine.run(Query.select("twok", RangePredicate("unique2", 0, 199)))
        assert "file-scan" in r.plan
        assert r.result_count == 200

    def test_single_tuple_select_one_amp(self, machine):
        r = machine.run(Query.select("twok", ExactMatch("unique1", 77)))
        assert r.result_count == 1
        assert r.tuples[0][0] == 77

    def test_store_result_registered(self, machine):
        r = machine.run(
            Query.select("twok", RangePredicate("unique1", 0, 99), into="res")
        )
        assert r.result_count == 100
        assert machine.lookup("res").num_records == 100

    def test_duplicate_result_name_rejected(self, machine):
        machine.run(Query.select("twok", RangePredicate("unique1", 0, 1), into="dup"))
        with pytest.raises(CatalogError):
            machine.run(
                Query.select("twok", RangePredicate("unique1", 0, 1), into="dup")
            )

    def test_storing_is_expensive(self, machine):
        # The logged INSERT path dominates: storing 10% costs far more
        # than returning it.
        to_host = machine.run(Query.select("twok", RangePredicate("ten", 0, 0)))
        stored = machine.run(
            Query.select("twok", RangePredicate("ten", 1, 1), into="st")
        )
        assert stored.response_time > 2 * to_host.response_time

    def test_indexed_range_reads_whole_index(self, machine):
        # Hash-organised index: row 3 of Table 1 is barely better than a
        # scan because every index entry is examined.
        small = machine.run(Query.select("twok", RangePredicate("unique2", 0, 19)))
        zero = machine.run(Query.select("twok", RangePredicate("unique2", -9, -1)))
        # Even an empty range pays the full index scan.
        assert zero.response_time > 0.5 * small.response_time


class TestJoins:
    def _nl_join(self, left, right, lpos, rpos):
        idx = {}
        for lt in left:
            idx.setdefault(lt[lpos], []).append(lt)
        return sorted(
            lt + rt for rt in right for lt in idx.get(rt[rpos], [])
        )

    def test_sort_merge_correctness(self, machine):
        machine.load_wisconsin("small", 200, seed=23)
        r = machine.run(
            Query.join(ScanNode("small"), ScanNode("twok"),
                       on=("unique2", "unique2"), into="j")
        )
        expected = self._nl_join(data(200, 23), data(), 1, 1)
        assert sorted(machine.lookup("j").records()) == expected
        assert r.result_count == 200

    def test_key_join_skips_redistribution(self, machine):
        machine.load_wisconsin("small", 200, seed=23)
        nonkey = machine.run(
            Query.join(ScanNode("small"), ScanNode("twok"),
                       on=("unique2", "unique2"), into="j1")
        )
        key = machine.run(
            Query.join(ScanNode("small"), ScanNode("twok"),
                       on=("unique1", "unique1"), into="j2")
        )
        assert key.stats.get("redistributions_skipped", 0) == 2
        assert key.response_time < nonkey.response_time
        assert key.result_count == nonkey.result_count == 200

    def test_key_join_correctness(self, machine):
        machine.load_wisconsin("small", 200, seed=23)
        machine.run(
            Query.join(ScanNode("small"), ScanNode("twok"),
                       on=("unique1", "unique1"), into="jk")
        )
        expected = self._nl_join(data(200, 23), data(), 0, 0)
        assert sorted(machine.lookup("jk").records()) == expected

    def test_join_with_selections(self, machine):
        machine.load_wisconsin("other", 2_000, seed=12)
        sel = RangePredicate("unique2", 0, 199)
        r = machine.run(
            Query.join(ScanNode("other", sel), ScanNode("twok", sel),
                       on=("unique2", "unique2"), into="js")
        )
        assert r.result_count == 200

    def test_nested_join(self, machine):
        machine.load_wisconsin("B", 2_000, seed=12)
        machine.load_wisconsin("C", 200, seed=13)
        sel = RangePredicate("unique2", 0, 199)
        q = Query.join(
            build=ScanNode("C"),
            probe=JoinNode(ScanNode("B", sel), ScanNode("twok", sel),
                           "unique2", "unique2"),
            on=("unique1", "unique1"),
            into="j3",
        )
        r = machine.run(q)
        a = [t for t in data() if t[1] <= 199]
        b = [t for t in data(2000, 12) if t[1] <= 199]
        ab = self._nl_join(b, a, 1, 1)
        expected = self._nl_join(data(200, 13), ab, 0, 0)
        assert r.result_count == len(expected)

    def test_abprime_faster_than_aselb(self):
        # "the Teradata can always do joinABprime faster than joinAselB"
        m = TeradataMachine(TeradataConfig(n_amps=5))
        m.load_wisconsin("A", 2_000, seed=1)
        m.load_wisconsin("B", 2_000, seed=2)
        m.load_wisconsin("Bprime", 200, seed=3)
        abprime = m.run(
            Query.join(ScanNode("Bprime"), ScanNode("A"),
                       on=("unique2", "unique2"), into="r1")
        )
        sel = RangePredicate("unique2", 0, 199)
        aselb = m.run(
            Query.join(ScanNode("B", sel), ScanNode("A"),
                       on=("unique2", "unique2"), into="r2")
        )
        assert abprime.response_time < aselb.response_time


class TestUpdates:
    def _fresh(self, u1, u2):
        base = next(iter(generate_tuples(1, seed=5)))
        return (u1, u2) + base[2:]

    def test_append(self, machine):
        r = machine.update(AppendTuple("twok", self._fresh(9_000, 9_000)))
        assert r.result_count == 1
        assert machine.lookup("twok").num_records == 2001

    def test_delete(self, machine):
        r = machine.update(DeleteTuple("twok", ExactMatch("unique1", 5)))
        assert r.result_count == 1
        assert all(t[0] != 5 for t in machine.lookup("twok").records())

    def test_modify_key_relocates_to_right_amp(self, machine):
        machine.update(ModifyTuple("twok", ExactMatch("unique1", 7),
                                   "unique1", 12_345))
        rel = machine.lookup("twok")
        home = gamma_hash(12_345, 5)
        assert any(
            t[0] == 12_345 for t in rel.fragments[home].live_records()
        )

    def test_modify_nonkey_in_place(self, machine):
        r = machine.update(ModifyTuple("twok", ExactMatch("unique1", 9),
                                       "odd100", 3))
        assert r.result_count == 1
        hit = [t for t in machine.lookup("twok").records() if t[0] == 9]
        assert hit[0][11] == 3

    def test_modify_key_costs_more_than_plain(self, machine):
        plain = machine.update(
            ModifyTuple("twok", ExactMatch("unique1", 20), "odd100", 5)
        )
        key = machine.update(
            ModifyTuple("twok", ExactMatch("unique1", 21), "unique1", 77_777)
        )
        assert key.response_time > plain.response_time

    def test_miss_affects_nothing(self, machine):
        r = machine.update(DeleteTuple("twok", ExactMatch("unique1", 10**6)))
        assert r.result_count == 0


class TestGammaVsTeradata:
    """The headline cross-machine comparisons of the paper."""

    def test_gamma_faster_on_selections(self):
        from repro import GammaConfig, GammaMachine

        g = GammaMachine(GammaConfig(n_disk_sites=4, n_diskless=4))
        t = TeradataMachine(TeradataConfig(n_amps=10))
        g.load_wisconsin("r", 2_000, seed=1)
        t.load_wisconsin("r", 2_000, seed=1)
        pred = RangePredicate("hundred", 0, 0)
        rg = g.run(Query.select("r", pred, into="og"))
        rt = t.run(Query.select("r", pred, into="ot"))
        assert rg.response_time < rt.response_time

    def test_gamma_aselb_faster_than_abprime_teradata_opposite(self):
        # Table 2's crossed asymmetry, at reduced scale.
        from repro import GammaConfig, GammaMachine

        def load(m):
            m.load_wisconsin("A", 4_000, seed=1)
            m.load_wisconsin("B", 4_000, seed=2)
            m.load_wisconsin("Bprime", 400, seed=3)

        sel = RangePredicate("unique2", 0, 399)
        g = GammaMachine(GammaConfig(n_disk_sites=4, n_diskless=4))
        load(g)
        g_abp = g.run(Query.join(ScanNode("Bprime"), ScanNode("A"),
                                 on=("unique2", "unique2"), into="x1"))
        g_aselb = g.run(Query.join(ScanNode("B", sel), ScanNode("A", sel),
                                   on=("unique2", "unique2"), into="x2"))
        assert g_aselb.response_time < g_abp.response_time

        t = TeradataMachine(TeradataConfig(n_amps=10))
        load(t)
        t_abp = t.run(Query.join(ScanNode("Bprime"), ScanNode("A"),
                                 on=("unique2", "unique2"), into="x1"))
        t_aselb = t.run(Query.join(ScanNode("B", sel), ScanNode("A"),
                                   on=("unique2", "unique2"), into="x2"))
        assert t_abp.response_time < t_aselb.response_time
