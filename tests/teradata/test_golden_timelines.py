"""Teradata golden end-time tests: the simulated timeline is a contract.

These response times were recorded from the pre-IR ``teradata/executor.py``
(the hand-rolled interpreter over logical plan nodes).  The executor now
drives the shared physical IR, and every refactor of that pipeline must
keep the timings **bit-identical** — they pin the Table 1/Table 2 retrieval
shapes and every Table 3 update operation.
"""

from repro import ExactMatch, Query, RangePredicate, TeradataConfig
from repro.engine import ScanNode
from repro.teradata import TeradataMachine
from repro.workloads.queries import update_suite

#: Exact simulated response times (seconds) from the reference executor.
GOLDEN_RETRIEVALS = {
    "select-1pct-scan": 6.861171614035093,
    "select-10pct-index-reject": 15.018765052631483,
    "select-1pct-index": 6.112168736842107,
    "single-tuple-select": 1.0135031228070175,
    "joinABprime-nonkey": 27.428707719298124,
    "joinABprime-key": 19.79922115789462,
    "joinAselB-nonkey": 27.76187982456129,
}

GOLDEN_UPDATES = {
    "append 1 tuple (no indices)": 0.9209147368421051,
    "append 1 tuple (one index)": 0.9209147368421051,
    "delete 1 tuple": 0.5134857894736842,
    "modify 1 tuple (key attribute)": 1.354857894736842,
    "modify 1 tuple (non-indexed attribute)": 0.7639431578947368,
    "modify 1 tuple (non-clustered index attribute)": 0.9844005263157893,
}


def _machine():
    m = TeradataMachine(TeradataConfig(n_amps=5))
    m.load_wisconsin("A", 2_000, seed=1, secondary_on=["unique2"])
    m.load_wisconsin("B", 2_000, seed=2)
    m.load_wisconsin("Bprime", 200, seed=3)
    return m


def test_golden_retrieval_end_times_bit_identical():
    m = _machine()
    sel = RangePredicate("unique2", 0, 199)
    measured = {
        "select-1pct-scan": m.run(
            Query.select("B", RangePredicate("unique2", 0, 19), into="t1")
        ),
        "select-10pct-index-reject": m.run(
            Query.select("A", RangePredicate("unique2", 0, 199), into="t2")
        ),
        "select-1pct-index": m.run(
            Query.select("A", RangePredicate("unique2", 0, 19), into="t3")
        ),
        "single-tuple-select": m.run(
            Query.select("A", ExactMatch("unique1", 77))
        ),
        "joinABprime-nonkey": m.run(
            Query.join(ScanNode("Bprime"), ScanNode("A"),
                       on=("unique2", "unique2"), into="j1")
        ),
        "joinABprime-key": m.run(
            Query.join(ScanNode("Bprime"), ScanNode("A"),
                       on=("unique1", "unique1"), into="j2")
        ),
        "joinAselB-nonkey": m.run(
            Query.join(ScanNode("B", sel), ScanNode("A"),
                       on=("unique2", "unique2"), into="j3")
        ),
    }
    assert {
        name: result.response_time for name, result in measured.items()
    } == GOLDEN_RETRIEVALS


def test_golden_update_end_times_bit_identical():
    measured = {}
    for name, request in update_suite("A", 2_000).items():
        m = _machine()
        measured[name] = m.update(request).response_time
    assert measured == GOLDEN_UPDATES


def test_golden_end_times_with_profiling():
    """The profiler is passive on the Teradata path too."""
    m = _machine()
    join = m.run(
        Query.join(ScanNode("Bprime"), ScanNode("A"),
                   on=("unique2", "unique2"), into="j1"),
        profile=True,
    )
    assert join.response_time == GOLDEN_RETRIEVALS["joinABprime-nonkey"]
    assert join.profile is not None
    phases = {
        phase
        for span in join.profile.spans.values()
        for phase in span.by_phase
    }
    assert {"scan", "redistribute", "merge", "store"} <= phases

    m2 = _machine()
    request = update_suite("A", 2_000)["modify 1 tuple (key attribute)"]
    upd = m2.update(request, profile=True)
    assert (
        upd.response_time
        == GOLDEN_UPDATES["modify 1 tuple (key attribute)"]
    )
    assert upd.profile is not None and upd.profile.spans


def test_golden_end_times_with_telemetry():
    """The telemetry sampler is passive on the Teradata path too."""
    from repro.metrics import TelemetrySampler

    m = _machine()
    sampler = TelemetrySampler(interval=0.5)
    join = m.run(
        Query.join(ScanNode("Bprime"), ScanNode("A"),
                   on=("unique2", "unique2"), into="j1"),
        telemetry=sampler,
    )
    assert join.response_time == GOLDEN_RETRIEVALS["joinABprime-nonkey"]
    assert sampler.samples == int(
        GOLDEN_RETRIEVALS["joinABprime-nonkey"] / 0.5
    )
    assert sampler.series["cluster.cpu.util.mean"].values
    assert sampler.series["ynet.net.util"].values
