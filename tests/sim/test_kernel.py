"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import (
    Delay,
    Get,
    Join,
    Put,
    Server,
    Simulation,
    Store,
    Use,
    WaitAll,
    run_to_completion,
)


def test_empty_simulation_runs_to_time_zero():
    sim = Simulation()
    assert sim.run() == 0.0
    assert sim.now == 0.0


def test_single_delay_advances_clock():
    def proc(sim):
        yield Delay(2.5)
        assert sim.now == 2.5

    sim = Simulation()
    sim.spawn(proc(sim))
    assert sim.run() == 2.5


def test_sequential_delays_accumulate():
    def proc(sim):
        yield Delay(1.0)
        yield Delay(0.5)
        yield Delay(0.25)

    sim = Simulation()
    sim.spawn(proc(sim))
    assert sim.run() == pytest.approx(1.75)


def test_parallel_processes_overlap():
    log = []

    def proc(sim, name, dur):
        yield Delay(dur)
        log.append((name, sim.now))

    sim = Simulation()
    sim.spawn(proc(sim, "a", 3.0))
    sim.spawn(proc(sim, "b", 1.0))
    sim.run()
    assert log == [("b", 1.0), ("a", 3.0)]
    assert sim.now == 3.0


def test_process_return_value_via_join():
    def child():
        yield Delay(1.0)
        return 42

    def parent(sim, child_proc, out):
        value = yield Join(child_proc)
        out.append((value, sim.now))

    sim = Simulation()
    out = []
    cp = sim.spawn(child())
    sim.spawn(parent(sim, cp, out))
    sim.run()
    assert out == [(42, 1.0)]


def test_join_on_already_finished_process():
    def child():
        return "done"
        yield  # pragma: no cover - makes this a generator

    def parent(sim, child_proc, out):
        yield Delay(5.0)
        value = yield Join(child_proc)
        out.append(value)

    sim = Simulation()
    out = []
    cp = sim.spawn(child())
    sim.spawn(parent(sim, cp, out))
    sim.run()
    assert out == ["done"]


def test_wait_all_collects_results_in_order():
    def child(dur, value):
        yield Delay(dur)
        return value

    def parent(sim, procs, out):
        values = yield WaitAll(procs)
        out.append((values, sim.now))

    sim = Simulation()
    procs = [sim.spawn(child(3.0, "slow")), sim.spawn(child(1.0, "fast"))]
    out = []
    sim.spawn(parent(sim, procs, out))
    sim.run()
    assert out == [(["slow", "fast"], 3.0)]


def test_wait_all_empty_resumes_immediately():
    def parent(out):
        values = yield WaitAll([])
        out.append(values)

    sim = Simulation()
    out = []
    sim.spawn(parent(out))
    sim.run()
    assert out == [[]]


def test_negative_delay_rejected():
    def proc():
        yield Delay(-1.0)

    sim = Simulation()
    sim.spawn(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_process_exception_wrapped_with_context():
    def proc():
        yield Delay(1.0)
        raise ValueError("boom")

    sim = Simulation()
    sim.spawn(proc())
    with pytest.raises(SimulationError) as excinfo:
        sim.run()
    assert isinstance(excinfo.value.__cause__, ValueError)


def test_unknown_effect_rejected():
    def proc():
        yield "not an effect"

    sim = Simulation()
    sim.spawn(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_run_until_stops_clock_early():
    def proc():
        yield Delay(100.0)

    sim = Simulation()
    sim.spawn(proc())
    assert sim.run(until=10.0) == 10.0


def test_run_to_completion_helper():
    def proc(dur):
        yield Delay(dur)

    assert run_to_completion([proc(1.0), proc(4.0)]) == 4.0


def test_deterministic_tie_break_is_spawn_order():
    order = []

    def proc(name):
        yield Delay(1.0)
        order.append(name)

    sim = Simulation()
    for name in ["a", "b", "c"]:
        sim.spawn(proc(name))
    sim.run()
    assert order == ["a", "b", "c"]


class TestServer:
    def test_single_server_serialises_work(self):
        done = []

        def proc(sim, server, name):
            yield Use(server, 2.0)
            done.append((name, sim.now))

        sim = Simulation()
        server = Server("disk")
        sim.spawn(proc(sim, server, "a"))
        sim.spawn(proc(sim, server, "b"))
        sim.run()
        assert done == [("a", 2.0), ("b", 4.0)]

    def test_capacity_two_allows_overlap(self):
        done = []

        def proc(sim, server, name):
            yield Use(server, 2.0)
            done.append((name, sim.now))

        sim = Simulation()
        server = Server("cpu", capacity=2)
        for name in ["a", "b", "c"]:
            sim.spawn(proc(sim, server, name))
        sim.run()
        assert done == [("a", 2.0), ("b", 2.0), ("c", 4.0)]

    def test_acquire_release_bracketing(self):
        from repro.sim import Acquire, Release

        trace = []

        def holder(sim, server):
            yield Acquire(server)
            trace.append(("got", sim.now))
            yield Delay(3.0)
            yield Release(server)

        def waiter(sim, server):
            yield Delay(0.1)
            yield Acquire(server)
            trace.append(("waited", sim.now))
            yield Release(server)

        sim = Simulation()
        server = Server("lock")
        sim.spawn(holder(sim, server))
        sim.spawn(waiter(sim, server))
        sim.run()
        assert trace == [("got", 0.0), ("waited", 3.0)]

    def test_release_without_acquire_raises(self):
        from repro.sim import Release

        def proc(server):
            yield Release(server)

        sim = Simulation()
        with pytest.raises(SimulationError):
            sim.spawn(proc(Server("x")))
            sim.run()

    def test_busy_time_and_utilisation(self):
        def proc(server):
            yield Use(server, 5.0)

        sim = Simulation()
        server = Server("disk")
        sim.spawn(proc(server))
        sim.spawn(proc(server))
        sim.run()
        assert server.busy_time == pytest.approx(10.0)
        assert server.utilisation(sim.now) == pytest.approx(1.0)
        assert server.requests == 2

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Server("bad", capacity=0)


class TestStore:
    def test_put_then_get(self):
        out = []

        def producer(store):
            yield Put(store, "x")

        def consumer(store):
            item = yield Get(store)
            out.append(item)

        sim = Simulation()
        store = Store("mbox")
        sim.spawn(producer(store))
        sim.spawn(consumer(store))
        sim.run()
        assert out == ["x"]

    def test_get_blocks_until_put(self):
        out = []

        def consumer(sim, store):
            item = yield Get(store)
            out.append((item, sim.now))

        def producer(store):
            yield Delay(4.0)
            yield Put(store, "late")

        sim = Simulation()
        store = Store("mbox")
        sim.spawn(consumer(sim, store))
        sim.spawn(producer(store))
        sim.run()
        assert out == [("late", 4.0)]

    def test_fifo_order_preserved(self):
        out = []

        def producer(store):
            for i in range(5):
                yield Put(store, i)

        def consumer(store):
            for _ in range(5):
                item = yield Get(store)
                out.append(item)

        sim = Simulation()
        store = Store("mbox")
        sim.spawn(producer(store))
        sim.spawn(consumer(store))
        sim.run()
        assert out == [0, 1, 2, 3, 4]

    def test_bounded_store_applies_backpressure(self):
        timeline = []

        def producer(sim, store):
            for i in range(3):
                yield Put(store, i)
                timeline.append(("put", i, sim.now))

        def consumer(sim, store):
            for _ in range(3):
                yield Delay(10.0)
                item = yield Get(store)
                timeline.append(("get", item, sim.now))

        sim = Simulation()
        store = Store("pipe", capacity=1)
        sim.spawn(producer(sim, store))
        sim.spawn(consumer(sim, store))
        sim.run()
        # Second put can only complete once the consumer drains the first.
        put_times = [t for kind, _i, t in timeline if kind == "put"]
        assert put_times[0] == 0.0
        assert put_times[1] >= 10.0
        assert put_times[2] >= 20.0

    def test_multiple_consumers_each_get_one(self):
        out = []

        def consumer(store, name):
            item = yield Get(store)
            out.append((name, item))

        def producer(store):
            yield Put(store, 1)
            yield Put(store, 2)

        sim = Simulation()
        store = Store("mbox")
        sim.spawn(consumer(store, "a"))
        sim.spawn(consumer(store, "b"))
        sim.spawn(producer(store))
        sim.run()
        assert sorted(out) == [("a", 1), ("b", 2)]

    def test_len_reports_buffered_items(self):
        def producer(store):
            yield Put(store, "x")
            yield Put(store, "y")

        sim = Simulation()
        store = Store("mbox")
        sim.spawn(producer(store))
        sim.run()
        assert len(store) == 2

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Store("bad", capacity=0)
