"""Tests for the type-keyed effect dispatch table and the run() fast paths.

The kernel dispatches effects through ``_HANDLERS`` (a dict keyed on the
effect class) and runs zero-delay wake-ups through a FIFO ready deque that
shares the heap's sequence counter.  These tests pin the contract: every
effect type round-trips, unknown effects fail loudly, deadlock diagnostics
still name the blocking resource, and an ``until`` cutoff leaves the queue
resumable.
"""

import pytest

from repro.errors import SimulationError
from repro.sim import (
    Acquire,
    Delay,
    Get,
    Join,
    Put,
    Release,
    Server,
    Simulation,
    Store,
    Use,
    WaitAll,
)
from repro.sim.kernel import _HANDLERS
import repro.sim.events as events_module


class TestDispatchTable:
    def test_handlers_cover_every_effect_type(self):
        effect_types = {
            obj for name, obj in vars(events_module).items()
            if isinstance(obj, type)
            and obj.__module__ == events_module.__name__
        }
        assert set(_HANDLERS) == effect_types

    def test_every_effect_round_trips(self):
        """One scenario exercising all eight effects, with exact timings."""
        sim = Simulation()
        server = Server("cpu")
        store = Store("mail")
        log = []

        def producer():
            yield Delay(1.0)                    # t=1
            yield Use(server, 2.0)              # t=3
            yield Put(store, "page")            # immediate (unbounded)
            log.append(("produced", sim.now))
            return "done-producing"

        def consumer():
            item = yield Get(store)             # blocks until t=3
            log.append((item, sim.now))
            yield Acquire(server)
            yield Delay(0.5)                    # holding the slot
            yield Release(server)
            return "done-consuming"

        p1 = sim.spawn(producer(), name="producer")
        p2 = sim.spawn(consumer(), name="consumer")

        def watcher():
            value = yield Join(p1)
            log.append(("joined", value, sim.now))
            both = yield WaitAll((p1, p2))
            log.append(("waited", both, sim.now))

        sim.spawn(watcher(), name="watcher")
        end = sim.run()
        assert end == 3.5
        # The Put hands the item straight to the blocked getter, so the
        # consumer logs before the producer resumes.
        assert log == [
            ("page", 3.0),
            ("produced", 3.0),
            ("joined", "done-producing", 3.0),
            ("waited", ["done-producing", "done-consuming"], 3.5),
        ]

    def test_unknown_effect_raises_simulation_error(self):
        sim = Simulation()

        def confused():
            yield object()

        sim.spawn(confused(), name="confused")
        with pytest.raises(SimulationError, match="unknown effect"):
            sim.run()


class TestDeadlockDiagnostics:
    def test_names_blocking_store(self):
        sim = Simulation()
        store = Store("starved-mailbox")

        def consumer():
            yield Get(store)

        sim.spawn(consumer(), name="consumer")
        with pytest.raises(SimulationError) as excinfo:
            sim.run()
        message = str(excinfo.value)
        assert "deadlock" in message
        assert "'consumer'" in message
        assert "starved-mailbox" in message

    def test_names_blocking_server(self):
        sim = Simulation()
        server = Server("held-cpu")

        def holder():
            yield Acquire(server)
            # Finishes without releasing: the waiter is stuck forever.

        def waiter():
            yield Acquire(server)

        sim.spawn(holder(), name="holder")
        sim.spawn(waiter(), name="waiter")
        with pytest.raises(SimulationError) as excinfo:
            sim.run()
        message = str(excinfo.value)
        assert "'waiter'" in message
        assert "held-cpu" in message


class TestRunUntilCutoff:
    def test_cutoff_mid_queue_preserves_remaining_events(self):
        """Stopping between two events must not drop the later one."""
        sim = Simulation()
        fired = []

        def ticker(at):
            yield Delay(at)
            fired.append(at)

        for at in (1.0, 2.0, 3.0):
            sim.spawn(ticker(at), name=f"tick-{at}")
        assert sim.run(until=1.5) == 1.5
        assert fired == [1.0]
        # The t=2 and t=3 events survived the cutoff intact.
        assert sim.run() == 3.0
        assert fired == [1.0, 2.0, 3.0]

    def test_cutoff_exactly_on_event_time_includes_it(self):
        sim = Simulation()
        fired = []

        def ticker(at):
            yield Delay(at)
            fired.append(at)

        for at in (1.0, 2.0):
            sim.spawn(ticker(at), name=f"tick-{at}")
        sim.run(until=2.0)
        assert fired == [1.0, 2.0]

    def test_repeated_runs_accumulate_events_processed(self):
        sim = Simulation()

        def ticker(at):
            yield Delay(at)

        for at in (1.0, 2.0):
            sim.spawn(ticker(at), name=f"tick-{at}")
        sim.run(until=1.0)
        first = sim.events_processed
        assert first > 0
        sim.run()
        assert sim.events_processed > first


class TestZeroDelayFastPath:
    def test_zero_delay_keeps_global_seq_order_with_due_heap_events(self):
        """A due heap event scheduled before a zero-delay one fires first."""
        sim = Simulation()
        order = []
        sim.call_at(0.0, lambda: order.append("heap-first"))
        sim.call_after(0.0, lambda: order.append("ready-second"))
        sim.call_at(0.0, lambda: order.append("heap-third"))
        sim.run()
        assert order == ["heap-first", "ready-second", "heap-third"]

    def test_zero_delay_chain_does_not_advance_clock(self):
        sim = Simulation()

        def hopper():
            for _ in range(100):
                yield Delay(0.0)

        sim.spawn(hopper(), name="hopper")
        assert sim.run() == 0.0
