"""Unit tests for Server/Store accounting and kernel termination.

These pin the interval-accurate accounting semantics: busy time integrates
at every state change (and pro-rates in-flight service when sampled
mid-run), Acquire/Release intervals count as service, Stores are FIFO with
back-pressure, and a drained event queue with blocked processes is a
deadlock error — never a silent fast completion.
"""

import pytest

from repro.errors import SimulationError
from repro.sim import (
    Acquire,
    Delay,
    Get,
    IntervalStats,
    Put,
    Release,
    Server,
    Simulation,
    Store,
    Use,
)


class TestIntervalStats:
    def test_empty_stats(self):
        stats = IntervalStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.max == 0.0

    def test_moments_and_bins(self):
        stats = IntervalStats()
        for value in (0.0, 0.005, 0.5, 50.0):
            stats.record(value)
        assert stats.count == 4
        assert stats.total == pytest.approx(50.505)
        assert stats.mean == pytest.approx(50.505 / 4)
        assert stats.max == 50.0
        # 0.0 -> bin 0 (< 1e-5), 0.005 -> bin 3 [1e-3, 1e-2),
        # 0.5 -> bin 5 [0.1, 1), 50 -> open bin past the last edge.
        assert stats.bins[0] == 1
        assert stats.bins[3] == 1
        assert stats.bins[5] == 1
        assert stats.bins[-1] == 1
        assert sum(stats.bins) == 4

    def test_as_dict_round_trip(self):
        stats = IntervalStats()
        stats.record(0.25)
        d = stats.as_dict()
        assert d["count"] == 1
        assert d["mean"] == pytest.approx(0.25)
        assert len(d["bins"]) == len(IntervalStats.BIN_EDGES) + 1


class TestServerAccounting:
    def test_sequential_service_accrues_slot_seconds(self):
        server = Server("disk")
        sim = Simulation()

        def proc():
            yield Use(server, 5.0)
            yield Use(server, 5.0)

        sim.spawn(proc())
        assert sim.run() == pytest.approx(10.0)
        assert server.busy_time == pytest.approx(10.0)
        assert server.utilisation(sim.now) == pytest.approx(1.0)
        assert server.requests == 2

    def test_midrun_sample_prorates_in_flight_service(self):
        # The old accounting credited service only at completion, so a
        # sample taken mid-interval under-reported utilisation.
        server = Server("disk")
        sim = Simulation()
        sampled = {}

        def worker():
            yield Use(server, 10.0)

        def sampler():
            yield Delay(4.0)
            sampled["util"] = server.utilisation(sim.now)
            sampled["mean"] = server.mean_utilisation(sim.now)

        sim.spawn(worker())
        sim.spawn(sampler())
        sim.run()
        assert sampled["util"] == pytest.approx(1.0)
        assert sampled["mean"] == pytest.approx(1.0)

    def test_idle_gap_lowers_utilisation(self):
        server = Server("disk")
        sim = Simulation()

        def proc():
            yield Use(server, 2.0)
            yield Delay(6.0)
            yield Use(server, 2.0)

        sim.spawn(proc())
        assert sim.run() == pytest.approx(10.0)
        assert server.busy_time == pytest.approx(4.0)
        assert server.utilisation(sim.now) == pytest.approx(0.4)

    def test_any_slot_vs_mean_slot_utilisation(self):
        # Two slots, one busy the whole run: "some slot busy" is 1.0,
        # the mean across slots is 0.5.
        server = Server("cpu", capacity=2)
        sim = Simulation()

        def proc():
            yield Use(server, 8.0)

        sim.spawn(proc())
        sim.run()
        assert server.utilisation(sim.now) == pytest.approx(1.0)
        assert server.mean_utilisation(sim.now) == pytest.approx(0.5)

    def test_wait_stats_and_mean_queue_length(self):
        server = Server("disk")
        sim = Simulation()

        def proc():
            yield Use(server, 5.0)

        sim.spawn(proc())
        sim.spawn(proc())
        sim.run()
        # Second request queues for 5s; queue holds 1 entry for 5 of 10s.
        assert server.wait_stats.count == 2
        assert server.wait_stats.max == pytest.approx(5.0)
        assert server.wait_stats.mean == pytest.approx(2.5)
        assert server.mean_queue_length(sim.now) == pytest.approx(0.5)

    def test_acquire_release_interval_accrues_busy_time(self):
        # Acquire/Release bracketed work must count as service; the old
        # accounting only credited Use intervals.
        server = Server("lock")
        sim = Simulation()

        def proc():
            yield Acquire(server)
            yield Delay(3.0)
            yield Release(server)
            yield Delay(1.0)

        sim.spawn(proc())
        assert sim.run() == pytest.approx(4.0)
        assert server.busy_time == pytest.approx(3.0)
        assert server.utilisation(sim.now) == pytest.approx(0.75)

    def test_utilisation_clamped_to_one(self):
        server = Server("disk")
        sim = Simulation()

        def proc():
            yield Use(server, 5.0)

        sim.spawn(proc())
        sim.run()
        assert server.utilisation(2.5) <= 1.0
        assert server.mean_utilisation(2.5) <= 1.0

    def test_zero_now_is_zero_utilisation(self):
        server = Server("disk")
        assert server.utilisation(0.0) == 0.0
        assert server.mean_utilisation(0.0) == 0.0
        assert server.mean_queue_length(0.0) == 0.0

    def test_observer_sees_service_intervals(self):
        server = Server("disk")
        seen = []
        server.observer = lambda name, start, dur: seen.append(
            (name, start, dur)
        )
        sim = Simulation()

        def proc():
            yield Use(server, 2.0)
            yield Use(server, 3.0)

        sim.spawn(proc())
        sim.run()
        assert seen == [("disk", 0.0, 2.0), ("disk", 2.0, 3.0)]


class TestStore:
    def test_put_get_is_fifo(self):
        store = Store("mbox")
        sim = Simulation()
        got = []

        def producer():
            for item in ("a", "b", "c"):
                yield Put(store, item)

        def consumer():
            for _ in range(3):
                item = yield Get(store)
                got.append(item)

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert got == ["a", "b", "c"]

    def test_bounded_store_back_pressures_producer(self):
        store = Store("mbox", capacity=1)
        sim = Simulation()
        put_times = []
        got = []

        def producer():
            for item in ("a", "b", "c"):
                yield Put(store, item)
                put_times.append(sim.now)

        def consumer():
            for _ in range(3):
                yield Delay(2.0)
                item = yield Get(store)
                got.append(item)

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert got == ["a", "b", "c"]
        # First put lands immediately; the rest wait for a slot freed by
        # the consumer at t=2 and t=4.
        assert put_times[0] == pytest.approx(0.0)
        assert put_times[1] == pytest.approx(2.0)
        assert put_times[2] == pytest.approx(4.0)

    def test_blocked_counters(self):
        store = Store("mbox", capacity=1)
        sim = Simulation()

        def producer():
            yield Put(store, "a")
            yield Put(store, "b")  # blocks: store full, no consumer yet

        def observer():
            yield Delay(1.0)
            assert store.blocked_putters == 1
            assert store.blocked_getters == 0
            yield Get(store)
            yield Get(store)

        sim.spawn(producer())
        sim.spawn(observer())
        sim.run()
        assert store.blocked_putters == 0

    def test_get_from_empty_waits_for_put(self):
        store = Store("mbox")
        sim = Simulation()
        got = []

        def consumer():
            item = yield Get(store)
            got.append((item, sim.now))

        def producer():
            yield Delay(3.0)
            yield Put(store, "late")

        sim.spawn(consumer())
        sim.spawn(producer())
        sim.run()
        assert got == [("late", 3.0)]


class TestTermination:
    def test_two_process_store_deadlock_raises_and_names_parties(self):
        # A classic cycle: each process waits on a store only the other
        # could fill.
        a_to_b = Store("a_to_b")
        b_to_a = Store("b_to_a")
        sim = Simulation()

        def left():
            item = yield Get(b_to_a)
            yield Put(a_to_b, item)

        def right():
            item = yield Get(a_to_b)
            yield Put(b_to_a, item)

        sim.spawn(left(), name="left")
        sim.spawn(right(), name="right")
        with pytest.raises(SimulationError) as exc:
            sim.run()
        message = str(exc.value)
        assert "deadlock" in message
        assert "'left'" in message and "'right'" in message
        assert "'a_to_b'" in message and "'b_to_a'" in message
        assert "empty" in message

    def test_full_store_deadlock_names_put(self):
        store = Store("mbox", capacity=1)
        sim = Simulation()

        def producer():
            yield Put(store, 1)
            yield Put(store, 2)  # nobody will ever drain the store

        sim.spawn(producer(), name="producer")
        with pytest.raises(SimulationError) as exc:
            sim.run()
        assert "Put(Store 'mbox', full)" in str(exc.value)

    def test_server_starvation_names_acquire(self):
        server = Server("lock")
        sim = Simulation()

        def hog():
            yield Acquire(server)
            # Never releases.

        def waiter():
            yield Acquire(server)

        sim.spawn(hog(), name="hog")
        sim.spawn(waiter(), name="waiter")
        with pytest.raises(SimulationError) as exc:
            sim.run()
        message = str(exc.value)
        assert "'waiter'" in message
        assert "Acquire(Server 'lock')" in message

    def test_run_until_advances_clock_on_early_drain(self):
        sim = Simulation()

        def proc():
            yield Delay(2.0)

        sim.spawn(proc())
        assert sim.run(until=10.0) == pytest.approx(10.0)
        assert sim.now == pytest.approx(10.0)

    def test_run_until_before_pending_event_stops_at_until(self):
        sim = Simulation()

        def proc():
            yield Delay(5.0)

        sim.spawn(proc())
        assert sim.run(until=3.0) == pytest.approx(3.0)
        assert sim.now == pytest.approx(3.0)

    def test_empty_run_with_until_reaches_until(self):
        sim = Simulation()
        assert sim.run(until=7.0) == pytest.approx(7.0)
