"""Cross-machine consistency: Gamma and Teradata answer identically.

Both machines run the same :class:`~repro.engine.plan.Query` objects over
identically seeded Wisconsin relations; whatever the hardware model says
about *time*, the *answers* must agree with each other and with a plain
Python oracle.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GammaConfig, GammaMachine, Query, RangePredicate, TeradataConfig
from repro.engine import ScanNode
from repro.teradata import TeradataMachine
from repro.workloads import generate_tuples

N = 1_000
SEED = 77


@pytest.fixture(scope="module")
def machines():
    gamma = GammaMachine(GammaConfig(n_disk_sites=4, n_diskless=4))
    teradata = TeradataMachine(TeradataConfig(n_amps=5))
    for m in (gamma, teradata):
        m.load_wisconsin("R", N, seed=SEED)
        m.load_wisconsin("T", N // 5, seed=SEED + 1)
    return gamma, teradata


@pytest.fixture(scope="module")
def oracle_data():
    return (
        list(generate_tuples(N, seed=SEED)),
        list(generate_tuples(N // 5, seed=SEED + 1)),
    )


@settings(max_examples=20, deadline=None)
@given(
    attr=st.sampled_from(["unique1", "unique2", "hundred", "ten"]),
    low=st.integers(min_value=-5, max_value=N),
    span=st.integers(min_value=0, max_value=N // 2),
)
def test_property_selections_agree(machines, oracle_data, attr, low, span):
    gamma, teradata = machines
    records, _ = oracle_data
    pos = {"unique1": 0, "unique2": 1, "hundred": 6, "ten": 4}[attr]
    high = low + span
    query = Query.select("R", RangePredicate(attr, low, high))
    g = gamma.run(query)
    t = teradata.run(query)
    expected = sorted(r for r in records if low <= r[pos] <= high)
    assert sorted(g.tuples) == expected
    assert sorted(t.tuples) == expected


@settings(max_examples=10, deadline=None)
@given(
    attr=st.sampled_from(["unique1", "unique2"]),
    sel_span=st.integers(min_value=0, max_value=N // 5),
)
def test_property_joins_agree(machines, oracle_data, attr, sel_span):
    gamma, teradata = machines
    records, small = oracle_data
    pos = {"unique1": 0, "unique2": 1}[attr]
    pred = RangePredicate(attr, 0, sel_span)
    query = Query.join(
        ScanNode("T", pred), ScanNode("R"), on=(attr, attr)
    )
    g = gamma.run(query)
    t = teradata.run(query)
    lookup = {}
    for rec in small:
        if 0 <= rec[pos] <= sel_span:
            lookup.setdefault(rec[pos], []).append(rec)
    expected = sorted(
        lt + rt for rt in records for lt in lookup.get(rt[pos], [])
    )
    # NOTE: Gamma's planner propagates the selection to R; the answer set
    # must be unchanged by that rewrite.
    assert sorted(g.tuples) == expected
    assert sorted(t.tuples) == expected


def test_aggregate_count_matches_cardinality(machines):
    gamma, _teradata = machines
    result = gamma.run(Query.aggregate("R", op="count"))
    assert result.tuples == [(N,)]


def test_response_times_differ_but_answers_do_not(machines):
    gamma, teradata = machines
    query = Query.select("R", RangePredicate("ten", 0, 0))
    g = gamma.run(query)
    t = teradata.run(query)
    assert sorted(g.tuples) == sorted(t.tuples)
    assert g.response_time != t.response_time
