"""Unit tests for CPU, disk and network models and configurations."""

import pytest

from repro.errors import ConfigError
from repro.hardware import (
    FUJITSU_M2333,
    GammaConfig,
    CpuModel,
    DiskDrive,
    DiskModel,
    GammaCosts,
    Interconnect,
    NetworkModel,
    TeradataConfig,
    VAX_11_750,
    KB,
    MB,
)
from repro.sim import Simulation


class TestCpuModel:
    def test_time_for_instructions(self):
        cpu = CpuModel(mips=1.0)
        assert cpu.time_for(1_000_000) == pytest.approx(1.0)

    def test_vax_is_0_6_mips(self):
        assert VAX_11_750.time_for(600_000) == pytest.approx(1.0)

    def test_zero_mips_rejected(self):
        with pytest.raises(ConfigError):
            CpuModel(mips=0.0)

    def test_negative_instructions_rejected(self):
        with pytest.raises(ConfigError):
            VAX_11_750.time_for(-1)


class TestDiskModel:
    def test_paper_anchor_32kb_transfer_is_about_13ms(self):
        # "For a 32 Kbyte disk page, the transfer time is 13 milliseconds"
        t = FUJITSU_M2333.transfer_time(32 * KB)
        assert 0.012 < t < 0.014

    def test_random_access_costs_seek_plus_latency(self):
        model = DiskModel()
        rand = model.random_access_time(4 * KB)
        seq = model.sequential_access_time(4 * KB)
        assert rand > seq
        assert rand == pytest.approx(
            model.avg_seek_s + model.rotational_latency_s
            + model.transfer_time(4 * KB)
        )

    def test_sequential_includes_rotational_overhead(self):
        model = DiskModel()
        assert model.sequential_access_time(4 * KB) == pytest.approx(
            model.transfer_time(4 * KB) + model.sequential_overhead_s
        )

    def test_bigger_pages_amortise_overhead(self):
        model = DiskModel()
        per_byte_small = model.sequential_access_time(2 * KB) / (2 * KB)
        per_byte_big = model.sequential_access_time(32 * KB) / (32 * KB)
        assert per_byte_big < per_byte_small

    def test_invalid_transfer_rate_rejected(self):
        with pytest.raises(ConfigError):
            DiskModel(transfer_rate=0)

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigError):
            DiskModel().transfer_time(-1)


class TestDiskDrive:
    def _run(self, gen_factory):
        sim = Simulation()
        sim.spawn(gen_factory())
        return sim.run()

    def test_sequential_stream_detected_automatically(self):
        drive = DiskDrive("d0", DiskModel())

        def proc():
            yield from drive.read("f", 0, 4 * KB)  # first access: random
            yield from drive.read("f", 1, 4 * KB)  # continues: sequential

        elapsed = self._run(lambda: proc())
        expected = (
            DiskModel().random_access_time(4 * KB)
            + DiskModel().sequential_access_time(4 * KB)
        )
        assert elapsed == pytest.approx(expected)

    def test_jump_costs_random_access(self):
        drive = DiskDrive("d0", DiskModel())

        def proc():
            yield from drive.read("f", 0, 4 * KB)
            yield from drive.read("f", 50, 4 * KB)

        elapsed = self._run(lambda: proc())
        assert elapsed == pytest.approx(
            2 * DiskModel().random_access_time(4 * KB)
        )

    def test_different_files_not_sequential(self):
        drive = DiskDrive("d0", DiskModel())

        def proc():
            yield from drive.read("f", 0, 4 * KB)
            yield from drive.read("g", 1, 4 * KB)

        elapsed = self._run(lambda: proc())
        assert elapsed == pytest.approx(
            2 * DiskModel().random_access_time(4 * KB)
        )

    def test_requests_serialise_on_one_drive(self):
        drive = DiskDrive("d0", DiskModel())
        sim = Simulation()

        def reader(page):
            yield from drive.read("f", page, 4 * KB, sequential=False)

        sim.spawn(reader(0))
        sim.spawn(reader(100))
        elapsed = sim.run()
        assert elapsed == pytest.approx(
            2 * DiskModel().random_access_time(4 * KB)
        )

    def test_statistics_counted(self):
        drive = DiskDrive("d0", DiskModel())
        sim = Simulation()

        def proc():
            yield from drive.read("f", 0, 4 * KB)
            yield from drive.write("f", 1, 4 * KB)

        sim.spawn(proc())
        sim.run()
        assert drive.pages_read == 1
        assert drive.pages_written == 1
        assert drive.bytes_moved == 8 * KB


class TestInterconnect:
    def test_short_circuit_same_node(self):
        net = Interconnect(NetworkModel(), ["n0", "n1"])
        sim = Simulation()

        def proc():
            yield from net.transfer("n0", "n0", 2 * KB)

        sim.spawn(proc())
        elapsed = sim.run()
        assert elapsed == pytest.approx(NetworkModel().short_circuit_s)
        assert net.messages_short_circuited == 1
        assert net.messages_sent == 0

    def test_internode_charges_interfaces_and_ring(self):
        model = NetworkModel()
        net = Interconnect(model, ["n0", "n1"])
        sim = Simulation()

        def proc():
            yield from net.transfer("n0", "n1", 2 * KB)

        sim.spawn(proc())
        elapsed = sim.run()
        expected = (
            model.message_overhead_s
            + 2 * model.interface_time(2 * KB)
            + model.ring_time(2 * KB)
        )
        assert elapsed == pytest.approx(expected)
        assert net.messages_sent == 1

    def test_interface_is_the_bottleneck_not_the_ring(self):
        # Two senders to distinct receivers: the shared ring is ~20x faster
        # than one interface, so total time is dominated by interfaces and
        # both transfers overlap almost entirely.
        model = NetworkModel()
        net = Interconnect(model, ["a", "b", "c", "d"])
        sim = Simulation()

        def send(src, dst):
            yield from net.transfer(src, dst, 2 * KB)

        sim.spawn(send("a", "b"))
        sim.spawn(send("c", "d"))
        elapsed = sim.run()
        serial = 2 * (
            model.message_overhead_s
            + 2 * model.interface_time(2 * KB)
            + model.ring_time(2 * KB)
        )
        assert elapsed < 0.75 * serial

    def test_same_interface_serialises(self):
        model = NetworkModel()
        net = Interconnect(model, ["a", "b", "c"])
        sim = Simulation()

        def send(dst):
            yield from net.transfer("a", dst, 2 * KB)

        sim.spawn(send("b"))
        sim.spawn(send("c"))
        elapsed = sim.run()
        one = model.message_overhead_s + model.interface_time(2 * KB)
        # Sender interface serialises the two messages.
        assert elapsed >= 2 * one

    def test_duplicate_node_rejected(self):
        net = Interconnect(NetworkModel(), ["a"])
        with pytest.raises(ConfigError):
            net.add_node("a")


class TestGammaConfig:
    def test_paper_default_topology(self):
        cfg = GammaConfig.paper_default()
        assert cfg.n_disk_sites == 8
        assert cfg.n_diskless == 8
        assert cfg.page_size == 4 * KB
        assert cfg.packet_size == 2 * KB
        assert cfg.join_memory_total == int(4.8 * MB)

    def test_with_sites_keeps_join_memory_constant(self):
        cfg = GammaConfig.paper_default()
        small = cfg.with_sites(2)
        assert small.n_disk_sites == 2
        assert small.n_diskless == 2
        assert small.join_memory_total == cfg.join_memory_total
        assert small.join_memory_per_node == cfg.join_memory_total // 2

    def test_with_page_size(self):
        cfg = GammaConfig.paper_default().with_page_size(16 * KB)
        assert cfg.page_size == 16 * KB

    def test_page_bigger_than_track_rejected(self):
        with pytest.raises(ConfigError):
            GammaConfig(page_size=64 * KB)

    def test_zero_disk_sites_rejected(self):
        with pytest.raises(ConfigError):
            GammaConfig(n_disk_sites=0)

    def test_costs_reject_negative(self):
        with pytest.raises(ConfigError):
            GammaCosts(read_tuple=-1.0)


class TestTeradataConfig:
    def test_paper_default_topology(self):
        cfg = TeradataConfig.paper_default()
        assert cfg.n_amps == 20
        assert cfg.n_ifps == 4
        assert cfg.disks_per_amp == 2
        assert cfg.insert_ios_per_tuple == 3.0

    def test_invalid_amps_rejected(self):
        with pytest.raises(ConfigError):
            TeradataConfig(n_amps=0)
