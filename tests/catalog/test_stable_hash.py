"""The stable-hash contract: partitioning must not depend on the
interpreter's salted string hashing.

Python salts ``hash(str)`` per process (``PYTHONHASHSEED``), so any
bucket assignment derived from the builtin hash of a string key changes
between runs — a relation declustered in one process would be looked up
in the wrong buckets by another.  ``stable_hash`` reroutes str/bytes
through crc32 and leaves small non-negative ints alone (``hash(i) == i``
for 0 <= i < 2**61-1), keeping every integer-key timeline bit-identical.
"""

import os
import subprocess
import sys
import textwrap
from zlib import crc32

from repro.catalog import gamma_hash, stable_hash


class TestStableHash:
    def test_identity_for_small_nonnegative_ints(self):
        for v in (0, 1, 42, 2**31, 2**60):
            assert stable_hash(v) == v

    def test_strings_use_crc32(self):
        assert stable_hash("unique2") == crc32(b"unique2")
        assert stable_hash("") == crc32(b"")

    def test_bytes_use_crc32(self):
        assert stable_hash(b"abc") == crc32(b"abc")
        assert stable_hash(bytearray(b"abc")) == crc32(b"abc")

    def test_tuples_stabilise_elementwise(self):
        assert stable_hash(("a", 1)) == stable_hash(("a", 1))
        assert stable_hash(("a", 1)) != stable_hash(("b", 1))

    def test_gamma_hash_string_keys_in_range_and_spread(self):
        counts = [0] * 8
        for v in range(4000):
            bucket = gamma_hash(f"key{v}", 8)
            assert 0 <= bucket < 8
            counts[bucket] += 1
        assert max(counts) < 1.3 * min(counts)


_CHILD = textwrap.dedent(
    """
    from repro.catalog import gamma_hash
    print(",".join(str(gamma_hash(f"key{v}", 8)) for v in range(64)))
    print(",".join(str(gamma_hash(v, 8)) for v in range(64)))
    """
)


def _buckets_under_seed(seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH", ""),
                    os.path.join(os.path.dirname(__file__), "..", "..",
                                 "src"))
        if p
    )
    out = subprocess.run(
        [sys.executable, "-c", _CHILD], env=env,
        capture_output=True, text=True, check=True,
    )
    return out.stdout


class TestHashSeedRegression:
    def test_bucket_assignments_identical_across_hash_seeds(self):
        """The headline regression: two interpreters with different
        PYTHONHASHSEED values must partition string keys identically."""
        assert _buckets_under_seed("1") == _buckets_under_seed("4242")
