"""Tests for declustering strategies and the catalog."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import (
    Catalog,
    Hashed,
    RangePartitioned,
    RoundRobin,
    UniformRange,
    gamma_hash,
)
from repro.errors import CatalogError
from repro.storage import Schema, int_attr


def schema():
    return Schema([int_attr("key"), int_attr("other")])


def records(n):
    return [(i, n - i) for i in range(n)]


class TestGammaHash:
    def test_deterministic(self):
        assert gamma_hash(42, 8) == gamma_hash(42, 8)

    def test_in_range(self):
        for v in range(1000):
            assert 0 <= gamma_hash(v, 7) < 7

    def test_spreads_uniformly(self):
        counts = [0] * 8
        for v in range(8000):
            counts[gamma_hash(v, 8)] += 1
        assert max(counts) < 1.25 * min(counts)

    def test_zero_buckets_rejected(self):
        with pytest.raises(CatalogError):
            gamma_hash(1, 0)


class TestRoundRobin:
    def test_deals_evenly(self):
        buckets = RoundRobin().partition(records(100), schema(), 8)
        sizes = [len(b) for b in buckets]
        assert max(sizes) - min(sizes) <= 1

    def test_preserves_all_tuples(self):
        recs = records(37)
        buckets = RoundRobin().partition(recs, schema(), 4)
        assert sorted(r for b in buckets for r in b) == sorted(recs)

    def test_no_key_derivable(self):
        assert RoundRobin().site_for_key(5, 8) is None


class TestHashed:
    def test_same_key_same_site(self):
        strat = Hashed("key")
        buckets = strat.partition(records(100), schema(), 8)
        for site, bucket in enumerate(buckets):
            for rec in bucket:
                assert strat.site_for_key(rec[0], 8) == site

    def test_roughly_even(self):
        buckets = Hashed("key").partition(records(10_000), schema(), 8)
        sizes = [len(b) for b in buckets]
        assert max(sizes) < 1.3 * min(sizes)

    def test_unprepared_raises(self):
        with pytest.raises(CatalogError):
            Hashed("key").site_of((1, 2), 8)

    def test_bind_without_load(self):
        strat = Hashed("key").bind(schema())
        assert strat.site_of((5, 0), 8) == gamma_hash(5, 8)


class TestRangePartitioned:
    def test_respects_boundaries(self):
        strat = RangePartitioned("key", [25, 50, 75])
        buckets = strat.partition(records(100), schema(), 4)
        assert all(r[0] <= 25 for r in buckets[0])
        assert all(25 < r[0] <= 50 for r in buckets[1])
        assert all(50 < r[0] <= 75 for r in buckets[2])
        assert all(r[0] > 75 for r in buckets[3])

    def test_key_site_derivable(self):
        strat = RangePartitioned("key", [25, 50, 75])
        strat.prepare(records(100), schema(), 4)
        assert strat.site_for_key(10, 4) == 0
        assert strat.site_for_key(99, 4) == 3

    def test_wrong_boundary_count_rejected(self):
        with pytest.raises(CatalogError):
            RangePartitioned("key", [10]).partition(records(100), schema(), 4)

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(CatalogError):
            RangePartitioned("key", [50, 10])

    def test_empty_boundaries_rejected(self):
        with pytest.raises(CatalogError):
            RangePartitioned("key", [])


class TestUniformRange:
    def test_even_split(self):
        buckets = UniformRange("key").partition(records(1000), schema(), 8)
        sizes = [len(b) for b in buckets]
        assert max(sizes) - min(sizes) <= 2

    def test_order_within_ranges(self):
        buckets = UniformRange("key").partition(records(100), schema(), 4)
        highs = [max(r[0] for r in b) for b in buckets if b]
        assert highs == sorted(highs)

    def test_unprepared_raises(self):
        with pytest.raises(CatalogError):
            UniformRange("key").site_of((1, 2), 4)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=500),
    n_sites=st.integers(min_value=1, max_value=16),
    kind=st.sampled_from(["rr", "hash", "uniform"]),
)
def test_property_partitioning_is_complete_and_disjoint(n, n_sites, kind):
    strat = {
        "rr": RoundRobin(),
        "hash": Hashed("key"),
        "uniform": UniformRange("key"),
    }[kind]
    recs = records(n)
    buckets = strat.partition(recs, schema(), n_sites)
    assert len(buckets) == n_sites
    flattened = [r for b in buckets for r in b]
    assert sorted(flattened) == sorted(recs)  # complete, no duplication


class TestCatalog:
    def test_create_and_lookup(self):
        cat = Catalog()
        rel = cat.create(
            "r", schema(), Hashed("key"), records(100),
            n_sites=4, page_size=4096,
        )
        assert cat.lookup("r") is rel
        assert rel.num_records == 100
        assert rel.n_sites == 4

    def test_duplicate_name_rejected(self):
        cat = Catalog()
        cat.create("r", schema(), RoundRobin(), records(10), 2, 4096)
        with pytest.raises(CatalogError):
            cat.create("r", schema(), RoundRobin(), records(10), 2, 4096)

    def test_unknown_lookup_raises(self):
        with pytest.raises(CatalogError):
            Catalog().lookup("ghost")

    def test_drop(self):
        cat = Catalog()
        cat.create("r", schema(), RoundRobin(), records(10), 2, 4096)
        cat.drop("r")
        assert "r" not in cat

    def test_clustered_creation(self):
        cat = Catalog()
        rel = cat.create(
            "r", schema(), Hashed("key"), records(500),
            n_sites=4, page_size=4096, clustered_on="key",
        )
        assert rel.clustered_on == "key"
        for frag in rel.fragments:
            keys = [r[0] for r in frag.records()]
            assert keys == sorted(keys)

    def test_secondary_index_on_create(self):
        cat = Catalog()
        rel = cat.create(
            "r", schema(), RoundRobin(), records(100),
            n_sites=2, page_size=4096, secondary_on=["other"],
        )
        assert rel.has_index_on("other")
        assert rel.indexed_attrs() == {"other"}

    def test_records_roundtrip(self):
        cat = Catalog()
        recs = records(64)
        rel = cat.create("r", schema(), Hashed("key"), recs, 4, 4096)
        assert sorted(rel.records()) == sorted(recs)
