"""Tests for the multiuser workload subsystem (terminals, arrivals,
mixes, and the machine-agnostic runner)."""

import random

import pytest

from repro import GammaConfig, GammaMachine, Query, TeradataConfig
from repro.errors import ConfigError
from repro.teradata import TeradataMachine
from repro.workloads import (
    MixEntry,
    QueryMix,
    WorkloadSpec,
    mixed_mix,
    mpl_sweep,
    selection_mix,
    update_mix,
)

N = 600


def gamma():
    m = GammaMachine(GammaConfig(n_disk_sites=4, n_diskless=4))
    m.load_wisconsin("A", N, seed=5)
    m.load_wisconsin("Bp", N // 10, seed=6)
    return m


def teradata():
    m = TeradataMachine(TeradataConfig(n_amps=8))
    m.load_wisconsin("A", N, seed=5)
    m.load_wisconsin("Bp", N // 10, seed=6)
    return m


class TestSpecAndMixes:
    def test_spec_validation(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(queries=0)
        with pytest.raises(ConfigError):
            WorkloadSpec(clients=0)
        with pytest.raises(ConfigError):
            WorkloadSpec(arrival="batch")
        with pytest.raises(ConfigError):
            WorkloadSpec(think_time=-1.0)
        with pytest.raises(ConfigError):
            WorkloadSpec(arrival="open", arrival_rate=0.0)

    def test_mpl_defaults(self):
        assert WorkloadSpec(clients=7).resolved_mpl == 7
        assert WorkloadSpec(arrival="open").resolved_mpl == 4
        assert WorkloadSpec(mpl=3).resolved_mpl == 3
        assert WorkloadSpec(mpl=3).with_mpl(9).resolved_mpl == 9

    def test_mix_validation(self):
        with pytest.raises(ConfigError):
            QueryMix("empty", [])
        with pytest.raises(ConfigError):
            MixEntry(0.0, "zero", lambda rng: Query.select("A"))

    def test_draws_cover_all_arms_and_are_seed_deterministic(self):
        mix = mixed_mix("A", "Bp", N)
        kinds = {e.kind for e in mix.entries}
        drawn = {mix.draw(random.Random(i))[0].kind for i in range(200)}
        assert drawn == kinds
        a = [mix.draw(random.Random(42))[0].kind for _ in range(5)]
        b = [mix.draw(random.Random(42))[0].kind for _ in range(5)]
        assert a == b

    def test_client_streams_are_independent_of_each_other(self):
        spec = WorkloadSpec(seed=9)
        assert (
            spec.client_rng(0).random() != spec.client_rng(1).random()
        )
        # And stable across calls.
        assert spec.client_rng(2).random() == spec.client_rng(2).random()


class TestDriveWorkload:
    def test_closed_loop_completes_every_query(self):
        spec = WorkloadSpec(queries=12, clients=3, think_time=0.1, seed=7)
        result = gamma().run_workload(selection_mix("A", N), spec)
        assert result.submitted == 12
        assert result.completed == 12
        assert result.failed == 0
        assert result.machine == "gamma"
        assert result.elapsed > 0
        assert result.throughput == pytest.approx(12 / result.elapsed)
        # Every closed-loop client actually submitted work.
        assert {r.client for r in result.records} == {0, 1, 2}
        lat = result.latency
        assert 0 < lat.p50 <= lat.p95 <= lat.p99 <= lat.max

    def test_same_spec_is_bit_identical(self):
        spec = WorkloadSpec(queries=10, clients=2, think_time=0.1, seed=3)
        a = gamma().run_workload(mixed_mix("A", "Bp", N), spec)
        b = gamma().run_workload(mixed_mix("A", "Bp", N), spec)
        assert a.to_json() == b.to_json()

    def test_teradata_runs_the_same_workload(self):
        spec = WorkloadSpec(queries=8, clients=2, think_time=0.1, seed=3)
        a = teradata().run_workload(mixed_mix("A", "Bp", N), spec)
        b = teradata().run_workload(mixed_mix("A", "Bp", N), spec)
        assert a.machine == "teradata"
        assert a.completed == 8
        assert a.to_json() == b.to_json()

    def test_open_loop_is_deterministic_and_completes(self):
        spec = WorkloadSpec(queries=10, arrival="open", arrival_rate=4.0,
                            seed=11)
        a = gamma().run_workload(selection_mix("A", N), spec)
        b = gamma().run_workload(selection_mix("A", N), spec)
        assert a.submitted == 10
        assert a.completed == 10
        assert a.arrival == "open"
        assert a.to_json() == b.to_json()

    def test_different_seeds_differ(self):
        mk = lambda seed: gamma().run_workload(
            selection_mix("A", N),
            WorkloadSpec(queries=10, clients=2, think_time=0.1, seed=seed),
        )
        assert mk(1).to_json() != mk(2).to_json()

    def test_update_mix_mutates_relation(self):
        from repro import RangePredicate

        spec = WorkloadSpec(queries=12, clients=2, think_time=0.05, seed=4)
        m = gamma()
        result = m.run_workload(update_mix("A", N), spec)
        assert result.completed == 12
        appends = result.by_kind().get("append")
        assert appends is not None and appends.count > 0
        # The appended tuples are durable: workload appends use keys far
        # above the loaded unique1 range.
        check = m.run(
            Query.select("A", RangePredicate("unique1", 1_000_000,
                                             10**12))
        )
        assert check.result_count == appends.count

    def test_admission_timeout_is_recorded_not_raised(self):
        # mpl=1 with a fast open-loop stream and a tight timeout: some
        # arrivals must give up in the admission queue, recorded as
        # AdmissionTimeout, never crashing the run.
        spec = WorkloadSpec(queries=12, arrival="open", arrival_rate=50.0,
                            mpl=1, timeout=0.05, seed=13)
        result = gamma().run_workload(selection_mix("A", N), spec)
        assert result.submitted == 12
        assert result.failed > 0
        assert result.completed + result.failed == 12
        errors = result.errors_by_type()
        assert errors.get("AdmissionTimeout", 0) == result.failed
        assert result.admission["timeouts"] == result.failed
        for r in result.records:
            if not r.ok:
                assert r.admitted is None

    def test_priority_policy_runs_clean(self):
        spec = WorkloadSpec(queries=10, clients=5, think_time=0.05,
                            mpl=1, policy="priority", seed=21)
        result = gamma().run_workload(mixed_mix("A", "Bp", N), spec)
        assert result.completed == 10
        assert result.policy == "priority"

    def test_mpl_bounds_are_respected(self):
        spec = WorkloadSpec(queries=10, clients=5, think_time=0.01,
                            mpl=2, seed=17)
        result = gamma().run_workload(selection_mix("A", N), spec)
        assert result.mpl == 2
        assert result.admission["peak_running"] <= 2

    def test_to_dict_schema(self):
        spec = WorkloadSpec(queries=6, clients=2, think_time=0.1, seed=8)
        d = gamma().run_workload(selection_mix("A", N), spec).to_dict()
        for key in ("machine", "mix", "arrival", "clients", "mpl",
                    "policy", "seed", "elapsed", "submitted", "completed",
                    "failed", "throughput", "latency", "queue_wait",
                    "service", "by_kind", "errors", "admission",
                    "records"):
            assert key in d, key
        assert len(d["records"]) == 6
        for key in ("p50", "p95", "p99", "mean", "max", "count"):
            assert key in d["latency"], key


class TestMplSweep:
    def test_sweep_is_deterministic_and_throughput_rises(self):
        spec = WorkloadSpec(queries=16, clients=8, think_time=0.05, seed=2)

        def run():
            return mpl_sweep(
                gamma, lambda: selection_mix("A", N), spec, mpls=(1, 4),
            )

        a, b = run(), run()
        assert [r.to_json() for r in a] == [r.to_json() for r in b]
        assert [r.mpl for r in a] == [1, 4]
        # More concurrency, more throughput; less queueing.
        assert a[1].throughput > a[0].throughput
        assert a[1].queue_wait.mean < a[0].queue_wait.mean
