"""Tests for the paper's benchmark query builders."""

import pytest

from repro.engine import (
    AppendTuple,
    ExactMatch,
    JoinMode,
    JoinNode,
    RangePredicate,
    ScanNode,
)
from repro.errors import BenchmarkError
from repro.workloads.queries import (
    join_abprime,
    join_aselb,
    join_cselaselb,
    selection_query,
    single_tuple_select,
    update_suite,
)


class TestSelectionQuery:
    def test_one_percent_range(self):
        q = selection_query("r", 10_000, 0.01)
        assert isinstance(q.root, ScanNode)
        pred = q.root.predicate
        assert isinstance(pred, RangePredicate)
        assert pred.high - pred.low + 1 == 100
        assert pred.attr == "unique2"

    def test_clustered_variant_uses_unique1(self):
        q = selection_query("r", 10_000, 0.10, attr="unique1")
        assert q.root.predicate.attr == "unique1"

    def test_into_propagated(self):
        q = selection_query("r", 1000, 0.01, into="out")
        assert q.into == "out"

    def test_single_tuple(self):
        q = single_tuple_select("r", 42)
        assert isinstance(q.root.predicate, ExactMatch)
        assert q.root.predicate.value == 42


class TestJoinBuilders:
    def test_abprime_build_is_bprime(self):
        q = join_abprime("A", "Bp", key=False)
        assert isinstance(q.root, JoinNode)
        assert q.root.build.relation == "Bp"
        assert q.root.probe.relation == "A"
        assert q.root.build_attr == "unique2"

    def test_abprime_key_variant(self):
        q = join_abprime("A", "Bp", key=True, mode=JoinMode.LOCAL)
        assert q.root.build_attr == "unique1"
        assert q.root.mode is JoinMode.LOCAL

    def test_aselb_has_ten_percent_selection_on_join_attr(self):
        q = join_aselb("A", "B", 10_000, key=False)
        pred = q.root.build.predicate
        assert isinstance(pred, RangePredicate)
        assert pred.attr == "unique2"
        assert pred.high - pred.low + 1 == 1000

    def test_cselaselb_shape(self):
        q = join_cselaselb("A", "B", "C", 10_000, key=False)
        assert isinstance(q.root, JoinNode)
        assert q.root.build.relation == "C"
        inner = q.root.probe
        assert isinstance(inner, JoinNode)
        assert isinstance(inner.build.predicate, RangePredicate)
        assert isinstance(inner.probe.predicate, RangePredicate)

    def test_cselaselb_result_cardinality(self):
        # The construction must yield exactly |C| result tuples.
        from repro import GammaConfig, GammaMachine

        n = 2_000
        m = GammaMachine(GammaConfig(n_disk_sites=4, n_diskless=4))
        m.load_wisconsin("A", n, seed=1)
        m.load_wisconsin("B", n, seed=2)
        m.load_wisconsin("C", n // 10, seed=3)
        r = m.run(join_cselaselb("A", "B", "C", n, key=False, into="out"))
        assert r.result_count == n // 10


class TestUpdateSuite:
    def test_six_requests(self):
        suite = update_suite("r", 10_000)
        assert len(suite) == 6
        assert isinstance(suite["append 1 tuple (no indices)"], AppendTuple)

    def test_fresh_tuple_outside_keyspace(self):
        suite = update_suite("r", 10_000)
        append = suite["append 1 tuple (no indices)"]
        assert append.record[0] >= 10_000

    def test_tiny_relation_rejected(self):
        with pytest.raises(BenchmarkError):
            update_suite("r", 10)

    def test_delete_targets_the_appended_tuple(self):
        suite = update_suite("r", 10_000)
        append = suite["append 1 tuple (one index)"]
        delete = suite["delete 1 tuple"]
        assert delete.where.value == append.record[0]
