"""Zipf and hot-key Wisconsin generators: determinism, validation, and
the monotone concentration the skew benchmark relies on."""

from collections import Counter

import pytest

from repro.errors import BenchmarkError
from repro.workloads import (
    generate_hot_key_tuples,
    generate_skewed_tuples,
    generate_tuples,
    wisconsin_schema,
)
from repro.workloads.wisconsin import MAX_SKEW


def _unique2(records):
    return [r[1] for r in records]


class TestSkewedGenerator:
    def test_deterministic_for_a_seed(self):
        a = list(generate_skewed_tuples(500, seed=3, skew=1.0))
        b = list(generate_skewed_tuples(500, seed=3, skew=1.0))
        assert a == b

    def test_different_seeds_differ(self):
        a = list(generate_skewed_tuples(500, seed=3, skew=1.0))
        b = list(generate_skewed_tuples(500, seed=4, skew=1.0))
        assert a != b

    def test_schema_arity_and_derived_ints(self):
        schema = wisconsin_schema()
        for record in generate_skewed_tuples(100, seed=1, skew=1.0):
            assert len(record) == len(schema.attributes)
            u1 = record[0]
            assert record[2] == u1 % 2
            assert record[6] == u1 % 100

    def test_unique1_stays_a_permutation(self):
        records = list(generate_skewed_tuples(300, seed=9, skew=1.5))
        assert sorted(r[0] for r in records) == list(range(300))

    def test_skew_zero_is_uniformish(self):
        values = _unique2(generate_skewed_tuples(4000, seed=7, skew=0.0))
        top = Counter(values).most_common(1)[0][1]
        assert top / len(values) < 0.01

    def test_concentration_grows_with_skew(self):
        shares = []
        for skew in (0.0, 0.5, 1.0, 1.5):
            values = _unique2(
                generate_skewed_tuples(4000, seed=7, skew=skew)
            )
            top = Counter(values).most_common(1)[0][1]
            shares.append(top / len(values))
        assert shares == sorted(shares)
        assert shares[-1] > 0.2  # skew=1.5 concentrates hard

    def test_domain_bounds_the_values(self):
        values = _unique2(
            generate_skewed_tuples(1000, seed=1, skew=1.0, domain=50)
        )
        assert set(values) <= set(range(50))

    def test_skew_knob_validated(self):
        with pytest.raises(BenchmarkError, match="skew"):
            list(generate_skewed_tuples(10, skew=-0.1))
        with pytest.raises(BenchmarkError, match="skew"):
            list(generate_skewed_tuples(10, skew=MAX_SKEW + 0.01))

    def test_skew_attr_validated(self):
        with pytest.raises(BenchmarkError, match="skew_attr"):
            list(generate_skewed_tuples(10, skew=1.0,
                                        skew_attr="stringu1"))

    def test_alternate_skew_attr_reverts_unique2(self):
        records = list(generate_skewed_tuples(
            200, seed=2, skew=1.5, skew_attr="tenthous",
        ))
        pos = 10  # tenthous
        top = Counter(r[pos] for r in records).most_common(1)[0][1]
        assert top / len(records) > 0.1
        # unique2 takes the permutation surrogate's value (u1).
        assert all(r[1] == r[0] for r in records)

    def test_matches_uniform_generator_otherwise(self):
        skewed = list(generate_skewed_tuples(100, seed=5, skew=0.0))
        uniform = list(generate_tuples(100, seed=5))
        # Same seed → same unique1 permutation and strings; only the
        # unique2 column differs (drawn i.i.d. instead of permuted).
        assert [r[0] for r in skewed] == [r[0] for r in uniform]
        assert [r[13:] for r in skewed] == [r[13:] for r in uniform]


class TestHotKeyGenerator:
    def test_hot_share_approximates_fraction(self):
        values = _unique2(generate_hot_key_tuples(
            4000, seed=7, hot_fraction=0.5, hot_value=3,
        ))
        share = Counter(values)[3] / len(values)
        assert 0.45 < share < 0.55

    def test_zero_fraction_is_uniform(self):
        values = _unique2(generate_hot_key_tuples(
            4000, seed=7, hot_fraction=0.0,
        ))
        top = Counter(values).most_common(1)[0][1]
        assert top / len(values) < 0.01

    def test_fraction_validated(self):
        with pytest.raises(BenchmarkError, match="hot_fraction"):
            list(generate_hot_key_tuples(10, hot_fraction=1.5))

    def test_deterministic(self):
        a = list(generate_hot_key_tuples(300, seed=3, hot_fraction=0.4))
        b = list(generate_hot_key_tuples(300, seed=3, hot_fraction=0.4))
        assert a == b
