"""Tests for the Wisconsin benchmark generator."""

import pytest

from repro.errors import BenchmarkError
from repro.workloads import (
    INT_ATTRS,
    TUPLE_BYTES,
    generate_tuples,
    selection_range,
    wisconsin_schema,
)


class TestSchema:
    def test_208_bytes(self):
        assert wisconsin_schema().tuple_bytes == TUPLE_BYTES == 208

    def test_sixteen_attributes(self):
        assert len(wisconsin_schema()) == 16

    def test_attribute_order(self):
        names = wisconsin_schema().names()
        assert names[:13] == list(INT_ATTRS)
        assert names[13:] == ["stringu1", "stringu2", "string4"]


class TestGenerator:
    def test_unique1_unique2_are_permutations(self):
        tuples = list(generate_tuples(1000, seed=1))
        u1 = sorted(t[0] for t in tuples)
        u2 = sorted(t[1] for t in tuples)
        assert u1 == list(range(1000))
        assert u2 == list(range(1000))

    def test_unique1_unique2_uncorrelated(self):
        tuples = list(generate_tuples(1000, seed=1))
        matches = sum(1 for t in tuples if t[0] == t[1])
        assert matches < 20  # expected ~1 for a random permutation pair

    def test_deterministic_for_seed(self):
        a = list(generate_tuples(100, seed=7))
        b = list(generate_tuples(100, seed=7))
        assert a == b

    def test_different_seeds_differ(self):
        a = list(generate_tuples(100, seed=1))
        b = list(generate_tuples(100, seed=2))
        assert a != b

    def test_derived_attributes_consistent(self):
        schema = wisconsin_schema()
        pos = {name: schema.position(name) for name in INT_ATTRS}
        for t in generate_tuples(500, seed=3):
            u1 = t[pos["unique1"]]
            assert t[pos["two"]] == u1 % 2
            assert t[pos["four"]] == u1 % 4
            assert t[pos["ten"]] == u1 % 10
            assert t[pos["hundred"]] == u1 % 100
            assert t[pos["tenthous"]] == u1 % 10000
            assert t[pos["odd100"]] % 2 == 1
            assert t[pos["even100"]] % 2 == 0

    def test_full_strings_are_unique_and_52_bytes(self):
        tuples = list(generate_tuples(200, seed=1, strings="full"))
        s1 = {t[13] for t in tuples}
        assert len(s1) == 200
        assert all(len(t[13]) == 52 for t in tuples)

    def test_cheap_strings_shared(self):
        tuples = list(generate_tuples(100, seed=1))
        assert len({id(t[13]) for t in tuples}) == 1

    def test_zero_tuples_rejected(self):
        with pytest.raises(BenchmarkError):
            list(generate_tuples(0))


class TestSelectionRange:
    def test_one_percent_of_10k(self):
        r = selection_range(10_000, 0.01)
        assert r.count == 100
        assert r.attr == "unique2"

    def test_ten_percent(self):
        r = selection_range(10_000, 0.10)
        assert r.count == 1000

    def test_hundred_percent(self):
        r = selection_range(1000, 1.0)
        assert r.count == 1000
        assert r.low == 0

    def test_zero_percent_is_empty_range(self):
        r = selection_range(1000, 0.0)
        assert r.high < r.low or r.high < 0

    def test_range_selects_exact_count(self):
        n = 5000
        r = selection_range(n, 0.01)
        tuples = generate_tuples(n, seed=5)
        hits = sum(1 for t in tuples if r.low <= t[1] <= r.high)
        assert hits == r.count == 50

    def test_bad_selectivity_rejected(self):
        with pytest.raises(BenchmarkError):
            selection_range(100, 1.5)
