"""Toy-scale run of the skew experiment: schema of the report/profile
and the acceptance claims at a size CI can afford."""

import json

from repro.bench import save_skew_profile, skew_join_experiment


class TestSkewExperiment:
    def test_toy_sweep_shape_and_checks(self, tmp_path, monkeypatch):
        monkeypatch.setenv("GAMMA_BENCH_RESULTS", str(tmp_path))
        report, profile = skew_join_experiment(
            n=2_000, skews=(0.0, 1.5), site_counts=(1, 4),
        )
        assert report.all_checks_pass, "\n".join(report.checks)
        # One row per (skew, strategy).
        assert len(report.rows) == 2 * 4
        # The JSON profile mirrors the table.
        assert profile["n"] == 2_000
        assert len(profile["points"]) == len(report.rows)
        for point in profile["points"]:
            assert point["result_count"] == 2_000
            assert point["speedup"] > 0
            assert point["spread"] is None or point["spread"] >= 1.0
        path = save_skew_profile(profile, str(tmp_path))
        with open(path) as fh:
            assert json.load(fh)["experiment"] == "extension_e4_skew"

    def test_sweep_is_deterministic_across_job_counts(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("GAMMA_BENCH_RESULTS", str(tmp_path))
        monkeypatch.setenv("GAMMA_BENCH_JOBS", "1")
        sequential, _ = skew_join_experiment(
            n=1_000, skews=(1.5,), site_counts=(1, 4),
        )
        monkeypatch.setenv("GAMMA_BENCH_JOBS", "2")
        parallel, _ = skew_join_experiment(
            n=1_000, skews=(1.5,), site_counts=(1, 4),
        )
        assert parallel.to_markdown() == sequential.to_markdown()
