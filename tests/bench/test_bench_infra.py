"""Tests for the benchmark harness, reporting and recorded numbers."""

import os

import pytest

from repro.bench import (
    FIGURE_CLAIMS,
    Report,
    TABLE1_SELECTIONS,
    TABLE2_JOINS,
    TABLE3_UPDATES,
    bench_sizes,
    build_gamma,
    build_teradata,
    ratio_note,
    run_stored,
    speedup_series,
)
from repro.errors import BenchmarkError
from repro.hardware import GammaConfig
from repro.workloads.queries import selection_query


class TestRecorded:
    def test_table1_has_all_sizes(self):
        for row in TABLE1_SELECTIONS.values():
            assert set(row) == {10_000, 100_000, 1_000_000}

    def test_table1_gamma_always_beats_teradata(self):
        for row in TABLE1_SELECTIONS.values():
            for cell in row.values():
                if cell["teradata"] is not None and cell["gamma"] is not None:
                    assert cell["gamma"] < cell["teradata"]

    def test_table2_crossed_asymmetry_in_paper_numbers(self):
        g_abp = TABLE2_JOINS["joinABprime (non-key attributes)"][100_000]
        g_aselb = TABLE2_JOINS["joinAselB (non-key attributes)"][100_000]
        assert g_aselb["gamma"] < g_abp["gamma"]
        assert g_abp["teradata"] < g_aselb["teradata"]

    def test_table3_complete(self):
        assert len(TABLE3_UPDATES) == 6

    def test_figure_claims_non_empty(self):
        assert all(FIGURE_CLAIMS.values())


class TestReport:
    def test_add_row_checks_arity(self):
        report = Report("t", "T", columns=["a", "b"])
        report.add_row(1, 2)
        with pytest.raises(BenchmarkError):
            report.add_row(1)

    def test_check_records_pass_fail(self):
        report = Report("t", "T", columns=["a"])
        assert report.check("ok", True) is True
        assert report.check("bad", False) is False
        assert not report.all_checks_pass
        assert any("FAIL" in c for c in report.checks)

    def test_markdown_contains_rows_and_checks(self):
        report = Report("t", "Title", columns=["x", "y"])
        report.add_row("v", 1.234)
        report.check("claim", True)
        md = report.to_markdown()
        assert "Title" in md and "| v |" in md and "[PASS] claim" in md

    def test_none_rendered_as_dash(self):
        report = Report("t", "T", columns=["x"])
        report.add_row(None)
        assert "—" in report.to_markdown()

    def test_save_writes_file(self, tmp_path):
        report = Report("unit_test_report", "T", columns=["x"])
        report.add_row(1)
        path = report.save(str(tmp_path))
        assert os.path.exists(path)
        assert "unit_test_report" in path

    def test_ratio_note(self):
        assert ratio_note(2.0, 1.0) == 2.0
        assert ratio_note(2.0, None) is None
        assert ratio_note(2.0, 0) is None


class TestHarness:
    def test_bench_sizes_default(self, monkeypatch):
        monkeypatch.delenv("GAMMA_BENCH_SIZES", raising=False)
        assert bench_sizes() == [10_000, 100_000]

    def test_bench_sizes_env_override(self, monkeypatch):
        monkeypatch.setenv("GAMMA_BENCH_SIZES", "500,1000")
        assert bench_sizes() == [500, 1000]

    def test_build_gamma_organisations(self):
        m = build_gamma(
            GammaConfig(n_disk_sites=2, n_diskless=2),
            relations=[("h", 1_000, "heap"), ("i", 1_000, "indexed")],
        )
        assert not m.catalog.lookup("h").indexed_attrs()
        assert m.catalog.lookup("i").indexed_attrs() == {"unique1", "unique2"}

    def test_build_gamma_unknown_organisation(self):
        with pytest.raises(ValueError):
            build_gamma(GammaConfig(n_disk_sites=2, n_diskless=2),
                        relations=[("x", 100, "zzz")])

    def test_build_teradata(self):
        from repro.hardware import TeradataConfig

        m = build_teradata(TeradataConfig(n_amps=4),
                           relations=[("r", 1_000, "indexed")])
        assert m.lookup("r").indexed_attrs() == {"unique2"}

    def test_run_stored_drops_result(self):
        m = build_gamma(GammaConfig(n_disk_sites=2, n_diskless=2),
                        relations=[("r", 1_000, "heap")])
        before = len(m.catalog)
        result = run_stored(
            m, lambda into: selection_query("r", 1_000, 0.01, into=into)
        )
        assert result.result_count == 10
        assert len(m.catalog) == before

    def test_speedup_series(self):
        speeds = speedup_series({1: 10.0, 2: 5.0, 4: 2.5}, reference=1)
        assert speeds == {1: 1.0, 2: 2.0, 4: 4.0}


class TestExperimentsSmoke:
    """Miniature versions of each experiment run end to end."""

    def test_fig01_02_tiny(self):
        from repro.bench import fig01_02_experiment

        report = fig01_02_experiment(n=4_000, processor_counts=(1, 4))
        assert len(report.rows) == 6

    def test_fig13_tiny(self):
        from repro.bench import fig13_experiment

        report = fig13_experiment(n=4_000, memory_ratios=(1.4, 0.4))
        assert len(report.rows) == 4

    def test_aggregate_report(self):
        from repro.bench import aggregate_experiment

        report = aggregate_experiment(n=2_000)
        assert report.all_checks_pass
