"""Registry contract: one source of truth, and the drift check that
keeps ``benchmarks/results/`` and the registry from diverging."""

import importlib.util
import os

import pytest

from repro.bench.registry import REGISTRY, get, names, ordered
from repro.errors import BenchmarkError

_REPO = os.path.join(os.path.dirname(__file__), "..", "..")
_GENERATOR = os.path.join(_REPO, "benchmarks", "generate_experiments_md.py")
_RESULTS = os.path.join(_REPO, "benchmarks", "results")


def _load_generator():
    spec = importlib.util.spec_from_file_location(
        "generate_experiments_md", _GENERATOR
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRegistry:
    def test_names_unique_and_complete(self):
        assert len(names()) == len(set(names())) == len(REGISTRY) == 21

    def test_ordered_pairs_names_with_labels(self):
        assert ordered() == [(e.spec.name, e.spec.label) for e in REGISTRY]

    def test_get_unknown_name_raises(self):
        with pytest.raises(BenchmarkError, match="table1_selection"):
            get("no_such_experiment")

    def test_kinds_are_known(self):
        assert {e.spec.kind for e in REGISTRY} <= {
            "table", "figure", "ablation", "extension",
        }


class TestRegistryDrift:
    """``generate_experiments_md.check_registry_drift`` must fail loudly
    on either direction of drift — and pass on the committed tree."""

    def test_committed_results_all_registered(self):
        generator = _load_generator()
        # The real invariant on the real tree: every committed report
        # has a registry entry and every NOTES key is registered.
        generator.check_registry_drift(_RESULTS, names())

    def test_notes_name_registered_experiments(self):
        generator = _load_generator()
        assert set(generator.NOTES) <= set(names())

    def test_stray_report_fails(self, tmp_path):
        generator = _load_generator()
        (tmp_path / "table1_selection.md").write_text("### stale\n")
        (tmp_path / "not_registered.md").write_text("### stray\n")
        with pytest.raises(SystemExit, match="not_registered"):
            generator.check_registry_drift(str(tmp_path), names())

    def test_unregistered_notes_key_fails(self, tmp_path):
        generator = _load_generator()
        with pytest.raises(SystemExit, match="renamed_away"):
            generator.check_registry_drift(
                str(tmp_path), names(), notes={"renamed_away": ("", "")}
            )

    def test_clean_directory_passes(self, tmp_path):
        generator = _load_generator()
        (tmp_path / "table1_selection.md").write_text("### ok\n")
        (tmp_path / "fig13_overflow.trace.json").write_text("{}\n")
        generator.check_registry_drift(str(tmp_path), names())
