"""Tests for the wall-clock perf microbenchmark harness."""

import importlib.util
import os

import pytest

_RUN_PERF = os.path.join(
    os.path.dirname(__file__), "..", "..", "benchmarks", "perf", "run_perf.py"
)


@pytest.fixture(scope="module")
def run_perf():
    spec = importlib.util.spec_from_file_location("run_perf", _RUN_PERF)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRunBenchmarks:
    def test_report_shape(self, run_perf):
        report = run_perf.run_benchmarks(scale=1000, repeat=2)
        assert report["scale"] == 1000
        assert set(report["benchmarks"]) == {
            "kernel_dispatch", "file_scan", "hybrid_join", "scaleup_1000",
        }
        for sample in report["benchmarks"].values():
            assert sample["wall_s"] > 0
            assert sample["cpu_s"] > 0
            assert sample["sim_s"] > 0
            assert sample["events"] > 0
            assert sample["events_per_s"] == pytest.approx(
                sample["events"] / sample["wall_s"]
            )
        # The scaleup bench carries per-(sites, query) sub-samples; below
        # full scale it covers the smoke site counts only.
        points = report["benchmarks"]["scaleup_1000"]["points"]
        assert [(p["sites"], p["query"]) for p in points] == [
            (64, "selection"), (64, "joinABprime"),
            (256, "selection"), (256, "joinABprime"),
        ]
        for point in points:
            assert point["events"] > 0
            assert point["wall_s"] > 0

    def test_speedup_recorded_only_at_full_scale(self, run_perf):
        sample = run_perf._bench_file_scan(1000)
        assert "speedup_vs_seed" not in sample


class TestBaselineGate:
    def test_pass_and_fail(self, run_perf):
        report = {"benchmarks": {
            "kernel_dispatch": {"events_per_cpu_s": 100_000.0},
        }}
        baseline = {"benchmarks": {
            "kernel_dispatch": {"events_per_cpu_s": 120_000.0},
        }}
        assert run_perf.check_baseline(report, baseline, 0.30) == []
        assert run_perf.check_baseline(report, baseline, 0.10)

    def test_missing_benchmark_fails(self, run_perf):
        baseline = {"benchmarks": {"gone": {"events_per_cpu_s": 1.0}}}
        failures = run_perf.check_baseline(
            {"benchmarks": {}}, baseline, 0.30
        )
        assert failures == ["gone: missing from this run"]

    def test_unbaselined_benchmark_fails(self, run_perf):
        report = {"benchmarks": {"novel": {"events_per_cpu_s": 1.0}}}
        failures = run_perf.check_baseline(
            report, {"benchmarks": {}}, 0.30
        )
        assert failures and "no baseline entry" in failures[0]
