"""Perf-record plumbing: run_perf reports land in the store, and the
trend/diff tables read them back grouped by commit."""

from repro.bench.perf import (
    format_perf_diff,
    format_perf_trend,
    perf_diff,
    perf_trend,
    record_perf_report,
)
from repro.bench.store import ResultStore


def _report(scale, rate):
    sample = {
        "wall_s": 1.0, "cpu_s": 1.0, "sim_s": 2.0, "events": rate,
        "events_per_s": float(rate), "events_per_cpu_s": float(rate),
    }
    return {
        "scale": scale,
        "repeat": 1,
        "python": "3",
        "benchmarks": {"kernel_dispatch": dict(sample),
                       "file_scan": dict(sample)},
    }


class TestPerfRecords:
    def test_records_keyed_per_commit(self, tmp_path):
        store = ResultStore(str(tmp_path))
        record_perf_report(_report(10_000, 100), store, git_sha="sha_one")
        record_perf_report(_report(10_000, 150), store, git_sha="sha_two")
        rows = perf_trend(ResultStore(str(tmp_path)))
        assert [row["git_sha"] for row in rows] == ["sha_one", "sha_two"]
        assert rows[0]["benchmarks"]["file_scan"]["events_per_cpu_s"] == 100

    def test_rerun_at_same_commit_replaces(self, tmp_path):
        store = ResultStore(str(tmp_path))
        record_perf_report(_report(10_000, 100), store, git_sha="sha_one")
        record_perf_report(_report(10_000, 130), store, git_sha="sha_one")
        rows = perf_trend(ResultStore(str(tmp_path)))
        assert len(rows) == 1
        assert rows[0]["benchmarks"]["file_scan"]["events_per_cpu_s"] == 130

    def test_scale_filter_and_formatting(self, tmp_path):
        store = ResultStore(str(tmp_path))
        record_perf_report(_report(10_000, 100), store, git_sha="sha_one")
        record_perf_report(_report(100_000, 90), store, git_sha="sha_one")
        assert len(perf_trend(store)) == 2
        rows = perf_trend(store, scale=10_000)
        assert len(rows) == 1
        text = format_perf_trend(rows)
        assert "sha_one" in text and "kernel_dispatch" in text

    def test_diff_matches_by_sha_prefix(self, tmp_path):
        store = ResultStore(str(tmp_path))
        record_perf_report(_report(10_000, 100), store, git_sha="aaa111")
        record_perf_report(_report(10_000, 150), store, git_sha="bbb222")
        rows = perf_diff("aaa", "bbb", store)
        assert {r["benchmark"] for r in rows} == {
            "kernel_dispatch", "file_scan",
        }
        assert all(r["ratio"] == 1.5 for r in rows)
        text = format_perf_diff("aaa", "bbb", rows)
        assert "1.50x" in text

    def test_diff_with_no_matches_is_empty(self, tmp_path):
        store = ResultStore(str(tmp_path))
        assert perf_diff("aaa", "bbb", store) == []
        assert "no perf records" in format_perf_diff("aaa", "bbb", [])

    def test_empty_trend_message(self, tmp_path):
        assert "no perf records" in format_perf_trend(
            perf_trend(ResultStore(str(tmp_path)))
        )
