"""Tests for the parallel sweep runner.

The load-bearing property is determinism: a figure experiment must produce
byte-identical result tables whether its sweep points run sequentially
in-process or fanned across worker processes.
"""

import os

import pytest

from repro.bench import bench_jobs, run_sweep
from repro.bench.experiments import fig01_02_experiment, fig14_15_experiment
from repro.errors import BenchmarkError


def _square(x):
    return x * x


class TestRunSweep:
    def test_empty_points(self):
        assert run_sweep(_square, []) == []

    def test_sequential_preserves_order(self):
        assert run_sweep(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_parallel_preserves_order(self):
        assert run_sweep(_square, [3, 1, 2], jobs=2) == [9, 1, 4]

    def test_jobs_env_default(self, monkeypatch):
        monkeypatch.delenv("GAMMA_BENCH_JOBS", raising=False)
        assert bench_jobs() == (os.cpu_count() or 1)
        monkeypatch.setenv("GAMMA_BENCH_JOBS", "3")
        assert bench_jobs() == 3
        monkeypatch.setenv("GAMMA_BENCH_JOBS", "0")
        assert bench_jobs() == 1

    def test_jobs_env_non_numeric_raises_clearly(self, monkeypatch):
        monkeypatch.setenv("GAMMA_BENCH_JOBS", "all-cores")
        with pytest.raises(BenchmarkError) as excinfo:
            bench_jobs()
        message = str(excinfo.value)
        assert "GAMMA_BENCH_JOBS" in message
        assert "'all-cores'" in message

    def test_jobs_env_whitespace_falls_back(self, monkeypatch):
        monkeypatch.setenv("GAMMA_BENCH_JOBS", "   ")
        assert bench_jobs() == (os.cpu_count() or 1)


class TestParallelDeterminism:
    def test_fig01_02_tables_byte_identical(self, tmp_path, monkeypatch):
        monkeypatch.setenv("GAMMA_BENCH_RESULTS", str(tmp_path))
        monkeypatch.setenv("GAMMA_BENCH_JOBS", "1")
        sequential = fig01_02_experiment(n=4000, processor_counts=(1, 2))
        monkeypatch.setenv("GAMMA_BENCH_JOBS", "2")
        parallel = fig01_02_experiment(n=4000, processor_counts=(1, 2))
        assert parallel.to_markdown() == sequential.to_markdown()
        assert parallel.rows == sequential.rows

    def test_fig14_15_tables_byte_identical(self, tmp_path, monkeypatch):
        monkeypatch.setenv("GAMMA_BENCH_RESULTS", str(tmp_path))
        monkeypatch.setenv("GAMMA_BENCH_JOBS", "1")
        sequential = fig14_15_experiment(n=2000, page_sizes_kb=(2, 16, 32))
        monkeypatch.setenv("GAMMA_BENCH_JOBS", "2")
        parallel = fig14_15_experiment(n=2000, page_sizes_kb=(2, 16, 32))
        assert parallel.to_markdown() == sequential.to_markdown()
