"""Result-store contract: canonical keys, round-trip, resume, recovery.

The store is what makes sweeps resumable: a grid point's key must be
identical across processes and interpreter restarts (so a warm store is
recognised as warm), appends must be crash-tolerant (a torn tail line
must not poison the file), and conflicting results under an unchanged
version tag must fail loudly instead of silently shadowing each other.
"""

import os
import subprocess
import sys
import textwrap

import pytest

from repro.bench.store import (
    ResultStore,
    StoreError,
    canonical_config,
    config_hash,
)


class TestCanonicalConfig:
    def test_key_order_is_irrelevant(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_tuples_hash_like_lists(self):
        """Configs round-trip through JSON (tuples come back as lists),
        so both spellings must map to the same store key."""
        assert config_hash({"sizes": (1, 2)}) == config_hash({"sizes": [1, 2]})

    def test_value_changes_change_the_hash(self):
        assert config_hash({"n": 10_000}) != config_hash({"n": 100_000})

    def test_canonical_text_is_sorted_and_compact(self):
        assert canonical_config({"b": 1, "a": (2,)}) == '{"a":[2],"b":1}'

    def test_non_json_config_raises(self):
        with pytest.raises(StoreError):
            config_hash({"fn": object()})

    def test_nan_raises(self):
        with pytest.raises(StoreError):
            config_hash({"x": float("nan")})


_CONFIG_SRC = (
    '{"machine": "gamma", "n": 100000, "sizes": (2, 4),'
    ' "opts": {"page_kb": 8.0, "traced": False, "mode": None}}'
)

_CHILD = textwrap.dedent(
    f"""
    from repro.bench.store import config_hash
    print(config_hash({_CONFIG_SRC}))
    """
)


def _hash_under_seed(seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH", ""),
                    os.path.join(os.path.dirname(__file__), "..", "..",
                                 "src"))
        if p
    )
    out = subprocess.run(
        [sys.executable, "-c", _CHILD], env=env,
        capture_output=True, text=True, check=True,
    )
    return out.stdout.strip()


class TestHashSeedRegression:
    def test_config_hash_identical_across_processes(self):
        """The resume-key contract: two interpreters with different
        PYTHONHASHSEED values must key the same config identically —
        otherwise a warm store would look cold to the next run."""
        here = eval(_CONFIG_SRC)
        assert _hash_under_seed("1") == _hash_under_seed("4242")
        assert _hash_under_seed("1") == config_hash(here)


class TestRoundTrip:
    def test_append_then_reload(self, tmp_path):
        store = ResultStore(str(tmp_path))
        record = store.append(
            "exp", "v1", {"n": 4, "sizes": (1, 2)}, {"t": 1.5},
            wall_s=0.25, git_sha="abc123",
        )
        fresh = ResultStore(str(tmp_path))
        got = fresh.get("exp", "v1", {"n": 4, "sizes": (1, 2)})
        assert got is not None
        assert got.result == {"t": 1.5}
        assert got.config == {"n": 4, "sizes": [1, 2]}
        assert got.config_hash == record.config_hash
        assert got.wall_s == 0.25
        assert got.git_sha == "abc123"
        assert got.recorded_at.endswith("Z")

    def test_get_miss_returns_none(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.append("exp", "v1", {"n": 4}, 1.0)
        assert store.get("exp", "v1", {"n": 5}) is None
        assert store.get("exp", "v2", {"n": 4}) is None
        assert store.get("other", "v1", {"n": 4}) is None

    def test_identical_duplicate_is_a_noop(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.append("exp", "v1", {"n": 4}, {"t": 1.5})
        store.append("exp", "v1", {"n": 4}, {"t": 1.5})
        with open(store.path_for("exp")) as fh:
            assert len(fh.readlines()) == 1

    def test_conflicting_result_raises_without_replace(self, tmp_path):
        """A different result under an unchanged version tag means the
        code changed without bumping the version — fail loudly."""
        store = ResultStore(str(tmp_path))
        store.append("exp", "v1", {"n": 4}, {"t": 1.5})
        with pytest.raises(StoreError):
            store.append("exp", "v1", {"n": 4}, {"t": 9.9})

    def test_replace_appends_and_later_line_wins(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.append("exp", "v1", {"n": 4}, {"t": 1.5})
        store.append("exp", "v1", {"n": 4}, {"t": 9.9}, replace=True)
        fresh = ResultStore(str(tmp_path))
        assert fresh.get("exp", "v1", {"n": 4}).result == {"t": 9.9}
        with open(store.path_for("exp")) as fh:
            assert len(fh.readlines()) == 2  # append-only: both lines

    def test_version_bump_keeps_old_records(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.append("exp", "v1", {"n": 4}, 1.0)
        store.append("exp", "v2", {"n": 4}, 2.0)
        fresh = ResultStore(str(tmp_path))
        assert fresh.get("exp", "v1", {"n": 4}).result == 1.0
        assert fresh.get("exp", "v2", {"n": 4}).result == 2.0

    def test_bad_experiment_names_rejected(self, tmp_path):
        store = ResultStore(str(tmp_path))
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(StoreError):
                store.path_for(bad)


class TestQueries:
    def test_records_filters_and_orders(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.append("b_exp", "v1", {"n": 1}, 1.0, git_sha="aaa")
        store.append("a_exp", "v1", {"n": 1}, 1.0, git_sha="aaa")
        store.append("a_exp", "v1", {"n": 2}, 2.0, git_sha="bbb")
        fresh = ResultStore(str(tmp_path))
        assert [r.experiment for r in fresh.records()] == [
            "a_exp", "a_exp", "b_exp",
        ]
        assert len(fresh.records("a_exp")) == 2
        assert len(fresh.records(git_sha="bbb")) == 1
        assert fresh.experiments() == ["a_exp", "b_exp"]
        assert fresh.counts() == {"a_exp": 2, "b_exp": 1}

    def test_shas_ordered_by_first_recording(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.append("exp", "v1", {"n": 1}, 1.0, git_sha="older")
        store.append("exp", "v1", {"n": 2}, 2.0, git_sha="newer")
        assert ResultStore(str(tmp_path)).shas() == ["older", "newer"]


class TestCorruptionRecovery:
    def test_torn_tail_is_skipped_and_counted(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.append("exp", "v1", {"n": 1}, 1.0)
        store.append("exp", "v1", {"n": 2}, 2.0)
        with open(store.path_for("exp"), "a") as fh:
            fh.write('{"experiment": "exp", "version"')  # crash-torn line
        fresh = ResultStore(str(tmp_path))
        assert len(fresh.records("exp")) == 2
        assert fresh.corrupt_lines == {"exp": 1}

    def test_compact_rewrites_clean(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.append("exp", "v1", {"n": 1}, 1.0)
        store.append("exp", "v1", {"n": 1}, 5.0, replace=True)
        with open(store.path_for("exp"), "a") as fh:
            fh.write("not json at all\n")
        fresh = ResultStore(str(tmp_path))
        assert fresh.compact("exp") == 1
        again = ResultStore(str(tmp_path))
        assert len(again.records("exp")) == 1
        assert again.get("exp", "v1", {"n": 1}).result == 5.0
        assert again.corrupt_lines == {}
        with open(store.path_for("exp")) as fh:
            assert len(fh.readlines()) == 1
