"""Experiment-matrix contract: grid enumeration, resume, force.

A grid must enumerate axis-major (the row order of every committed
report), derived fields must land in the config (and therefore the
store key), and re-running an experiment against a warm store must
execute zero grid points while reproducing the identical report.
"""

import pytest

from repro.bench import Axis, ExperimentSpec, Grid, run_experiment
from repro.bench.reporting import Report
from repro.bench.store import ResultStore
from repro.errors import BenchmarkError


class TestAxisAndGrid:
    def test_axis_validates(self):
        with pytest.raises(BenchmarkError):
            Axis("", (1,))
        with pytest.raises(BenchmarkError):
            Axis("n", ())

    def test_points_axis_major(self):
        grid = Grid(
            axes=(Axis("a", (1, 2)), Axis("b", ("x", "y"))),
            base={"k": 0},
        )
        assert grid.points() == [
            {"k": 0, "a": 1, "b": "x"},
            {"k": 0, "a": 1, "b": "y"},
            {"k": 0, "a": 2, "b": "x"},
            {"k": 0, "a": 2, "b": "y"},
        ]

    def test_derive_fields_join_the_config(self):
        grid = Grid(
            axes=(Axis("n", (1, 2, 3)),),
            derive=lambda c: {**c, "traced": c["n"] == 3},
        )
        assert [c["traced"] for c in grid.points()] == [False, False, True]

    def test_duplicate_axes_rejected(self):
        with pytest.raises(BenchmarkError):
            Grid(axes=(Axis("n", (1,)), Axis("n", (2,))))

    def test_axes_shadowing_base_rejected(self):
        with pytest.raises(BenchmarkError):
            Grid(axes=(Axis("n", (1,)),), base={"n": 0})

    def test_axis_lookup(self):
        grid = Grid(axes=(Axis("n", (1, 2)),))
        assert grid.axis("n").values == (1, 2)
        with pytest.raises(BenchmarkError):
            grid.axis("missing")


_POINT_CALLS: list[dict] = []


def _toy_point(config):
    _POINT_CALLS.append(dict(config))
    return {"double": config["n"] * 2}


def _toy_grid(ns=(1, 2, 3)):
    return Grid(axes=(Axis("n", tuple(ns)),), base={"tag": "toy"})


def _toy_summarise(grid, results):
    report = Report(name="toy", title="Toy", columns=("n", "double"))
    for n, result in zip(grid.axis("n").values, results):
        report.add_row(n, result["double"])
    report.check("doubling holds", all(
        r["double"] == 2 * n
        for n, r in zip(grid.axis("n").values, results)
    ))
    return report


TOY_SPEC = ExperimentSpec(
    name="toy_double",
    label="Toy",
    kind="table",
    grid=_toy_grid,
    point=_toy_point,
    summarise=_toy_summarise,
)


class TestRunExperiment:
    def setup_method(self):
        _POINT_CALLS.clear()

    def test_cold_store_executes_everything(self, tmp_path):
        run = run_experiment(TOY_SPEC, ResultStore(str(tmp_path)), jobs=1)
        assert (run.executed, run.cached, run.total) == (3, 0, 3)
        assert len(_POINT_CALLS) == 3
        assert run.report.all_checks_pass
        assert all(r is not None for r in run.records)
        assert all(r.wall_s is not None for r in run.records)

    def test_warm_store_executes_nothing(self, tmp_path):
        first = run_experiment(TOY_SPEC, ResultStore(str(tmp_path)), jobs=1)
        _POINT_CALLS.clear()
        second = run_experiment(TOY_SPEC, ResultStore(str(tmp_path)), jobs=1)
        assert (second.executed, second.cached) == (0, 3)
        assert _POINT_CALLS == []
        assert second.report.to_markdown() == first.report.to_markdown()

    def test_partial_store_executes_only_missing(self, tmp_path):
        run_experiment(TOY_SPEC, ResultStore(str(tmp_path)), jobs=1,
                       ns=(1, 2))
        _POINT_CALLS.clear()
        run = run_experiment(TOY_SPEC, ResultStore(str(tmp_path)), jobs=1)
        assert (run.executed, run.cached) == (1, 2)
        assert [c["n"] for c in _POINT_CALLS] == [3]

    def test_force_reexecutes_and_replaces(self, tmp_path):
        run_experiment(TOY_SPEC, ResultStore(str(tmp_path)), jobs=1)
        _POINT_CALLS.clear()
        run = run_experiment(TOY_SPEC, ResultStore(str(tmp_path)), jobs=1,
                             force=True)
        assert (run.executed, run.cached) == (3, 0)
        assert len(_POINT_CALLS) == 3

    def test_overrides_key_separately(self, tmp_path):
        """A toy-scale run must never shadow the committed full-scale
        records: different configs, different store keys."""
        store = ResultStore(str(tmp_path))
        run_experiment(TOY_SPEC, store, jobs=1)
        run = run_experiment(TOY_SPEC, store, jobs=1, ns=(10,))
        assert run.executed == 1
        assert len(store.records("toy_double")) == 4

    def test_no_store_runs_fully_in_memory(self, tmp_path):
        run = run_experiment(TOY_SPEC, None, jobs=1)
        assert (run.executed, run.cached) == (3, 0)
        assert run.report.all_checks_pass
