"""Shared fixtures for the bench-layer tests."""

import pytest


@pytest.fixture(autouse=True)
def _isolate_bench_artifacts(tmp_path, monkeypatch):
    """Redirect bench output away from the committed tree.

    Several experiment point functions write side artifacts (Chrome
    traces, EXPLAIN ANALYZE profiles) into ``results_dir()`` as they
    run, and the store defaults to ``benchmarks/results/store``.  The
    committed copies of both must only change when the real full-scale
    suite runs — a tier-1 test executing a miniature grid would
    otherwise silently overwrite them with toy-scale data.
    """
    monkeypatch.setenv("GAMMA_BENCH_RESULTS", str(tmp_path / "results"))
    monkeypatch.setenv("GAMMA_BENCH_STORE", str(tmp_path / "store"))
